/**
 * @file
 * Live-variable analysis over registers (virtual, physical, and CC).
 *
 * The classic backward may-analysis. Used by dead-code elimination,
 * the streaming pass's dead-induction-variable deletion (paper Step 2j),
 * and register assignment.
 */

#ifndef WMSTREAM_CFG_LIVENESS_H
#define WMSTREAM_CFG_LIVENESS_H

#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "rtl/inst.h"
#include "rtl/machine.h"

namespace wmstream::cfg {

/** A register identity: file plus index, hashable. */
struct RegKey
{
    rtl::RegFile file;
    int index;

    bool operator==(const RegKey &o) const
    {
        return file == o.file && index == o.index;
    }
};

struct RegKeyHash
{
    size_t operator()(const RegKey &k) const
    {
        return static_cast<size_t>(k.file) * 1000003u +
               static_cast<size_t>(k.index);
    }
};

using RegSet = std::unordered_set<RegKey, RegKeyHash>;

/** Register keys read by @p inst (includes CC for conditional jumps). */
std::vector<RegKey> instUseKeys(const rtl::Inst &inst);

/**
 * Register keys written by @p inst. A Call clobbers all caller-saved
 * registers of both files plus both CC cells per @p traits.
 */
std::vector<RegKey> instDefKeys(const rtl::Inst &inst,
                                const rtl::MachineTraits &traits);

/** True if @p key is a hardwired zero register per @p traits. */
bool isZeroReg(const RegKey &key, const rtl::MachineTraits &traits);

/** Per-block liveness sets for one function. */
class Liveness
{
  public:
    Liveness(rtl::Function &fn, const rtl::MachineTraits &traits);

    const RegSet &liveIn(const rtl::Block *b) const
    {
        return in_.at(b);
    }
    const RegSet &liveOut(const rtl::Block *b) const
    {
        return out_.at(b);
    }

    /**
     * True if @p key is live immediately after instruction @p idx of
     * block @p b (i.e. some later use may read the value present there).
     */
    bool liveAfter(const rtl::Block *b, size_t idx, const RegKey &key) const;

  private:
    const rtl::MachineTraits traits_;
    std::unordered_map<const rtl::Block *, RegSet> in_;
    std::unordered_map<const rtl::Block *, RegSet> out_;
};

} // namespace wmstream::cfg

#endif // WMSTREAM_CFG_LIVENESS_H
