#include "cfg/dominators.h"

#include <algorithm>
#include <unordered_set>

#include "support/diag.h"

namespace wmstream::cfg {

using rtl::Block;

DominatorTree::DominatorTree(rtl::Function &fn)
{
    Block *entry = fn.entry();
    WS_ASSERT(entry, "dominators of empty function");

    // Depth-first post-order, then reverse.
    std::unordered_set<const Block *> visited;
    std::vector<Block *> post;
    std::vector<std::pair<Block *, size_t>> stack;
    stack.emplace_back(entry, 0);
    visited.insert(entry);
    while (!stack.empty()) {
        auto &[b, i] = stack.back();
        if (i < b->succs.size()) {
            Block *s = b->succs[i++];
            if (visited.insert(s).second)
                stack.emplace_back(s, 0);
        } else {
            post.push_back(b);
            stack.pop_back();
        }
    }
    rpo_.assign(post.rbegin(), post.rend());
    for (size_t i = 0; i < rpo_.size(); ++i)
        rpoNum_[rpo_[i]] = static_cast<int>(i);

    // Cooper-Harvey-Kennedy iteration.
    idom_[entry] = entry;
    auto intersect = [&](Block *a, Block *b) {
        while (a != b) {
            while (rpoNum_.at(a) > rpoNum_.at(b))
                a = idom_.at(a);
            while (rpoNum_.at(b) > rpoNum_.at(a))
                b = idom_.at(b);
        }
        return a;
    };

    bool changed = true;
    while (changed) {
        changed = false;
        for (Block *b : rpo_) {
            if (b == entry)
                continue;
            Block *newIdom = nullptr;
            for (Block *p : b->preds) {
                if (!rpoNum_.count(p) || !idom_.count(p))
                    continue; // unreachable or not yet processed
                newIdom = newIdom ? intersect(newIdom, p) : p;
            }
            if (newIdom && (!idom_.count(b) || idom_[b] != newIdom)) {
                idom_[b] = newIdom;
                changed = true;
            }
        }
    }
}

Block *
DominatorTree::idom(const Block *b) const
{
    auto it = idom_.find(b);
    if (it == idom_.end())
        return nullptr;
    return it->second == b ? nullptr : it->second;
}

bool
DominatorTree::dominates(const Block *a, const Block *b) const
{
    const Block *x = b;
    for (;;) {
        if (x == a)
            return true;
        auto it = idom_.find(x);
        if (it == idom_.end() || it->second == x)
            return false;
        x = it->second;
    }
}

} // namespace wmstream::cfg
