#include "rtl/program.h"

#include <sstream>

#include "support/diag.h"

namespace wmstream::rtl {

Function *
Program::addFunction(const std::string &name)
{
    WS_ASSERT(!findFunction(name), "duplicate function " + name);
    funcs_.push_back(std::make_unique<Function>(name));
    return funcs_.back().get();
}

Function *
Program::findFunction(const std::string &name)
{
    for (auto &f : funcs_)
        if (f->name() == name)
            return f.get();
    return nullptr;
}

const Function *
Program::findFunction(const std::string &name) const
{
    for (const auto &f : funcs_)
        if (f->name() == name)
            return f.get();
    return nullptr;
}

GlobalVar &
Program::addGlobal(const std::string &name, int64_t size, int64_t align)
{
    WS_ASSERT(!findGlobal(name), "duplicate global " + name);
    globals_.push_back(GlobalVar{name, size, align, {}, -1});
    return globals_.back();
}

GlobalVar *
Program::findGlobal(const std::string &name)
{
    for (auto &g : globals_)
        if (g.name == name)
            return &g;
    return nullptr;
}

int64_t
Program::layout(int64_t base)
{
    int64_t addr = base;
    for (auto &g : globals_) {
        int64_t a = g.align > 0 ? g.align : 1;
        addr = (addr + a - 1) & ~(a - 1);
        g.address = addr;
        addr += g.size;
    }
    return addr;
}

int64_t
Program::globalAddress(const std::string &name) const
{
    for (const auto &g : globals_)
        if (g.name == name) {
            WS_ASSERT(g.address >= 0, "globalAddress before layout()");
            return g.address;
        }
    WS_PANIC("unknown global " + name);
}

std::string
Program::str() const
{
    std::ostringstream os;
    for (const auto &g : globals_)
        os << "global " << g.name << " size " << g.size << " align "
           << g.align << "\n";
    for (const auto &f : funcs_)
        os << f->str() << "\n";
    return os.str();
}

} // namespace wmstream::rtl
