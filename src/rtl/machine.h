/**
 * @file
 * Target-machine traits used by the expander and the optimizer.
 *
 * The paper's key structural claim is that the recurrence and streaming
 * optimizations are machine-independent except for a small
 * machine-specific rewrite routine ("approximately 30 to 50 lines").
 * MachineTraits carries the data those passes need to stay generic:
 * register conventions, whether dual-operation instructions exist, and
 * whether stream hardware exists.
 */

#ifndef WMSTREAM_RTL_MACHINE_H
#define WMSTREAM_RTL_MACHINE_H

#include "rtl/expr.h"

namespace wmstream::rtl {

/** The two RTL targets this reproduction implements. */
enum class MachineKind : uint8_t {
    WM,     ///< decoupled access/execute machine with streams
    Scalar, ///< generic load/store scalar machine (68020/88100/VAX models)
};

/**
 * Static description of a target.
 *
 * Register conventions (both targets, mirroring WM):
 *  - r31 / f31 read as zero; writes are discarded;
 *  - r0, r1 / f0, f1 are the data FIFOs on WM and are reserved on the
 *    scalar target so code is register-compatible;
 *  - r30 is the stack pointer;
 *  - r2..r5 / f2..f5 carry arguments, r2 / f2 the return value;
 *  - r16..r29, f16..f30 are callee-saved, the rest caller-saved.
 */
struct MachineTraits
{
    MachineKind kind = MachineKind::WM;

    bool hasDualOp = true;   ///< (a op1 b) op2 c in one instruction
    bool hasStreams = true;  ///< SCU stream hardware present

    int numIntRegs = 32;
    int numFltRegs = 32;

    int spReg = 30;          ///< stack pointer (Int file)
    int zeroReg = 31;        ///< reads as 0 in both files
    int firstArgReg = 2;
    int numArgRegs = 6;
    int retReg = 2;          ///< return value register in each file
    int firstAllocatable = 2;
    int firstCalleeSaved = 16;
    int lastAllocatableInt = 29;   ///< r30 is SP
    int lastAllocatableFlt = 30;

    /** Largest immediate representable in an instruction operand. */
    int64_t maxImmediate = 1 << 15;

    bool isWM() const { return kind == MachineKind::WM; }
};

/** Traits for the WM architecture. */
MachineTraits wmTraits();

/** Traits for the generic scalar (load/store, single-op) target. */
MachineTraits scalarTraits();

} // namespace wmstream::rtl

#endif // WMSTREAM_RTL_MACHINE_H
