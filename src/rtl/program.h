/**
 * @file
 * A whole program: functions plus global data, with link-time layout.
 *
 * The driver acts as the paper's linker: it assigns every global symbol
 * an address in the simulated flat memory and records initial bytes so
 * the simulator (or a timing model) can load the image.
 */

#ifndef WMSTREAM_RTL_PROGRAM_H
#define WMSTREAM_RTL_PROGRAM_H

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "rtl/inst.h"

namespace wmstream::rtl {

/** One global variable or constant-pool entry. */
struct GlobalVar
{
    std::string name;
    int64_t size = 0;
    int64_t align = 8;
    std::vector<uint8_t> init;  ///< may be shorter than size; rest zero
    int64_t address = -1;       ///< assigned by Program::layout()
    /**
     * False when no pointer can refer to this global (a scalar whose
     * address is never taken): only direct symbol-addressed stores can
     * modify it, which lets loop-invariant code motion hoist its loads.
     */
    bool mayBeAliased = true;
    /** True for constant-pool entries: never stored to. */
    bool readOnly = false;
};

/**
 * Functions, globals, and layout for one compiled program.
 */
class Program
{
  public:
    Function *addFunction(const std::string &name);
    Function *findFunction(const std::string &name);
    const Function *findFunction(const std::string &name) const;

    GlobalVar &addGlobal(const std::string &name, int64_t size,
                         int64_t align);
    GlobalVar *findGlobal(const std::string &name);

    std::vector<std::unique_ptr<Function>> &functions() { return funcs_; }
    const std::vector<std::unique_ptr<Function>> &functions() const
    {
        return funcs_;
    }
    std::vector<GlobalVar> &globals() { return globals_; }
    const std::vector<GlobalVar> &globals() const { return globals_; }

    /**
     * Assign addresses to all globals starting at @p base.
     * @return one past the highest assigned address.
     */
    int64_t layout(int64_t base = 0x1000);

    /** Address of @p name after layout() (panics if unknown). */
    int64_t globalAddress(const std::string &name) const;

    /** Render all functions (for tests and golden listings). */
    std::string str() const;

  private:
    std::vector<std::unique_ptr<Function>> funcs_;
    std::vector<GlobalVar> globals_;
};

} // namespace wmstream::rtl

#endif // WMSTREAM_RTL_PROGRAM_H
