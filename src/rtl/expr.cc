#include "rtl/expr.h"

#include <sstream>

#include "support/diag.h"

namespace wmstream::rtl {

int
dataTypeSize(DataType t)
{
    switch (t) {
      case DataType::I8: return 1;
      case DataType::I16: return 2;
      case DataType::I32: return 4;
      case DataType::I64: return 8;
      case DataType::F32: return 4;
      case DataType::F64: return 8;
    }
    return 4;
}

bool
isFloatType(DataType t)
{
    return t == DataType::F32 || t == DataType::F64;
}

const char *
dataTypeName(DataType t)
{
    switch (t) {
      case DataType::I8: return "i8";
      case DataType::I16: return "i16";
      case DataType::I32: return "i32";
      case DataType::I64: return "i64";
      case DataType::F32: return "f32";
      case DataType::F64: return "f64";
    }
    return "?";
}

bool
isVirtualFile(RegFile f)
{
    return f == RegFile::VInt || f == RegFile::VFlt;
}

const char *
regFilePrefix(RegFile f)
{
    switch (f) {
      case RegFile::Int: return "r";
      case RegFile::Flt: return "f";
      case RegFile::VInt: return "vr";
      case RegFile::VFlt: return "vf";
      case RegFile::CC: return "cc";
    }
    return "?";
}

bool
isRelationalOp(Op op)
{
    switch (op) {
      case Op::Eq: case Op::Ne: case Op::Lt:
      case Op::Le: case Op::Gt: case Op::Ge:
        return true;
      default:
        return false;
    }
}

const char *
opName(Op op)
{
    switch (op) {
      case Op::Add: return "+";
      case Op::Sub: return "-";
      case Op::Mul: return "*";
      case Op::Div: return "/";
      case Op::Rem: return "%";
      case Op::And: return "&";
      case Op::Or: return "|";
      case Op::Xor: return "^";
      case Op::Shl: return "<<";
      case Op::Shr: return ">>u";
      case Op::Sar: return ">>";
      case Op::Eq: return "==";
      case Op::Ne: return "!=";
      case Op::Lt: return "<";
      case Op::Le: return "<=";
      case Op::Gt: return ">";
      case Op::Ge: return ">=";
      case Op::Neg: return "-";
      case Op::Not: return "~";
      case Op::CvtIF: return "itof";
      case Op::CvtFI: return "ftoi";
      case Op::CvtWiden: return "widen";
    }
    return "?";
}

Op
swapRelational(Op op)
{
    switch (op) {
      case Op::Lt: return Op::Gt;
      case Op::Le: return Op::Ge;
      case Op::Gt: return Op::Lt;
      case Op::Ge: return Op::Le;
      default: return op; // Eq/Ne symmetric
    }
}

Op
negateRelational(Op op)
{
    switch (op) {
      case Op::Eq: return Op::Ne;
      case Op::Ne: return Op::Eq;
      case Op::Lt: return Op::Ge;
      case Op::Le: return Op::Gt;
      case Op::Gt: return Op::Le;
      case Op::Ge: return Op::Lt;
      default: WS_PANIC("negateRelational on non-relational op");
    }
}

bool
Expr::isIntConst(int64_t v) const
{
    return kind_ == Kind::Const && !isFloatType(type_) && ival_ == v;
}

bool
Expr::isReg(RegFile f, int idx) const
{
    return kind_ == Kind::Reg && file_ == f && static_cast<int>(ival_) == idx;
}

ExprPtr
makeConst(int64_t v, DataType t)
{
    auto e = std::make_shared<Expr>();
    e->kind_ = Expr::Kind::Const;
    e->type_ = t;
    e->ival_ = v;
    return e;
}

ExprPtr
makeFConst(double v, DataType t)
{
    auto e = std::make_shared<Expr>();
    e->kind_ = Expr::Kind::Const;
    e->type_ = t;
    e->fval_ = v;
    return e;
}

ExprPtr
makeSym(const std::string &name, int64_t offset)
{
    auto e = std::make_shared<Expr>();
    e->kind_ = Expr::Kind::Sym;
    e->type_ = DataType::I64;
    e->sym_ = name;
    e->ival_ = offset;
    return e;
}

ExprPtr
makeReg(RegFile file, int index, DataType t)
{
    auto e = std::make_shared<Expr>();
    e->kind_ = Expr::Kind::Reg;
    e->type_ = t;
    e->file_ = file;
    e->ival_ = index;
    return e;
}

ExprPtr
makeMem(ExprPtr addr, DataType t)
{
    WS_ASSERT(addr != nullptr, "Mem with null address");
    auto e = std::make_shared<Expr>();
    e->kind_ = Expr::Kind::Mem;
    e->type_ = t;
    e->lhs_ = std::move(addr);
    return e;
}

ExprPtr
makeBinRaw(Op op, ExprPtr l, ExprPtr r, DataType t)
{
    WS_ASSERT(l && r, "Bin with null operand");
    auto e = std::make_shared<Expr>();
    e->kind_ = Expr::Kind::Bin;
    e->type_ = t;
    e->op_ = op;
    e->lhs_ = std::move(l);
    e->rhs_ = std::move(r);
    return e;
}

ExprPtr
makeUnRaw(Op op, ExprPtr x, DataType t)
{
    WS_ASSERT(x != nullptr, "Un with null operand");
    auto e = std::make_shared<Expr>();
    e->kind_ = Expr::Kind::Un;
    e->type_ = t;
    e->op_ = op;
    e->lhs_ = std::move(x);
    return e;
}

namespace {

int64_t
foldInt(Op op, int64_t a, int64_t b)
{
    switch (op) {
      case Op::Add: return a + b;
      case Op::Sub: return a - b;
      case Op::Mul: return a * b;
      case Op::Div: return b ? a / b : 0;
      case Op::Rem: return b ? a % b : 0;
      case Op::And: return a & b;
      case Op::Or: return a | b;
      case Op::Xor: return a ^ b;
      case Op::Shl: return a << (b & 63);
      case Op::Shr:
        return static_cast<int64_t>(static_cast<uint64_t>(a) >> (b & 63));
      case Op::Sar: return a >> (b & 63);
      case Op::Eq: return a == b;
      case Op::Ne: return a != b;
      case Op::Lt: return a < b;
      case Op::Le: return a <= b;
      case Op::Gt: return a > b;
      case Op::Ge: return a >= b;
      default: WS_PANIC("foldInt: bad op");
    }
}

double
foldFlt(Op op, double a, double b, bool *ok)
{
    *ok = true;
    switch (op) {
      case Op::Add: return a + b;
      case Op::Sub: return a - b;
      case Op::Mul: return a * b;
      case Op::Div: return b != 0.0 ? a / b : (*ok = false, 0.0);
      default: *ok = false; return 0.0;
    }
}

bool
isCommutative(Op op)
{
    switch (op) {
      case Op::Add: case Op::Mul: case Op::And:
      case Op::Or: case Op::Xor: case Op::Eq: case Op::Ne:
        return true;
      default:
        return false;
    }
}

DataType
binResultType(Op op, const ExprPtr &l, const ExprPtr &r)
{
    if (isRelationalOp(op))
        return DataType::I32;
    DataType lt = l->type(), rt = r->type();
    // Wider operand wins; float beats int.
    if (isFloatType(lt) || isFloatType(rt)) {
        if (lt == DataType::F64 || rt == DataType::F64)
            return DataType::F64;
        return isFloatType(lt) ? lt : rt;
    }
    return dataTypeSize(lt) >= dataTypeSize(rt) ? lt : rt;
}

} // anonymous namespace

ExprPtr
makeBin(Op op, ExprPtr l, ExprPtr r)
{
    DataType rt = binResultType(op, l, r);

    bool lfloat = isFloatType(l->type());
    // Constant folding.
    if (l->isConst() && r->isConst()) {
        if (!lfloat && !isFloatType(r->type())) {
            return makeConst(foldInt(op, l->ival(), r->ival()), rt);
        }
        if (lfloat && isFloatType(r->type()) && !isRelationalOp(op)) {
            bool ok;
            double v = foldFlt(op, l->fval(), r->fval(), &ok);
            if (ok)
                return makeFConst(v, rt);
        }
    }

    // Sym +/- const folds into the symbol's offset.
    if (l->isSym() && r->isConst() && !isFloatType(r->type())) {
        if (op == Op::Add)
            return makeSym(l->symbol(), l->symOffset() + r->ival());
        if (op == Op::Sub)
            return makeSym(l->symbol(), l->symOffset() - r->ival());
    }
    if (l->isConst() && r->isSym() && op == Op::Add)
        return makeSym(r->symbol(), r->symOffset() + l->ival());

    // Canonicalize: constant operand of a commutative op to the right.
    if (isCommutative(op) && l->isConst() && !r->isConst())
        std::swap(l, r);
    // Likewise prefer the symbol on the right of an Add so address
    // expressions take the shape (f(iv)) + base.
    if (op == Op::Add && l->isSym() && !r->isConst() && !r->isSym())
        std::swap(l, r);

    // Identities.
    if (!lfloat) {
        if (op == Op::Add && r->isIntConst(0))
            return l;
        if (op == Op::Sub && r->isIntConst(0))
            return l;
        if (op == Op::Mul && r->isIntConst(1))
            return l;
        if (op == Op::Mul && r->isIntConst(0))
            return makeConst(0, rt);
        if ((op == Op::Shl || op == Op::Shr || op == Op::Sar) &&
                r->isIntConst(0)) {
            return l;
        }
        if (op == Op::Div && r->isIntConst(1))
            return l;
        // (x + c1) + c2  ->  x + (c1 + c2); same for mixed add/sub chains.
        if ((op == Op::Add || op == Op::Sub) && r->isConst() &&
                l->kind() == Expr::Kind::Bin &&
                (l->op() == Op::Add || l->op() == Op::Sub) &&
                l->rhs()->isConst() && !isFloatType(l->rhs()->type())) {
            int64_t c1 = l->op() == Op::Add ? l->rhs()->ival()
                                            : -l->rhs()->ival();
            int64_t c2 = op == Op::Add ? r->ival() : -r->ival();
            return makeBin(Op::Add, l->lhs(), makeConst(c1 + c2, rt));
        }
    }

    return makeBinRaw(op, std::move(l), std::move(r), rt);
}

ExprPtr
makeUn(Op op, ExprPtr x, DataType result)
{
    if (x->isConst()) {
        switch (op) {
          case Op::Neg:
            if (isFloatType(x->type()))
                return makeFConst(-x->fval(), result);
            return makeConst(-x->ival(), result);
          case Op::Not:
            if (!isFloatType(x->type()))
                return makeConst(~x->ival(), result);
            break;
          case Op::CvtIF:
            if (!isFloatType(x->type()))
                return makeFConst(static_cast<double>(x->ival()), result);
            break;
          case Op::CvtFI:
            if (isFloatType(x->type()))
                return makeConst(static_cast<int64_t>(x->fval()), result);
            break;
          case Op::CvtWiden:
            if (!isFloatType(x->type()))
                return makeConst(x->ival(), result);
            break;
          default:
            break;
        }
    }
    return makeUnRaw(op, std::move(x), result);
}

bool
exprEqual(const ExprPtr &a, const ExprPtr &b)
{
    if (a == b)
        return true;
    if (!a || !b)
        return false;
    if (a->kind() != b->kind() || a->type() != b->type())
        return false;
    switch (a->kind()) {
      case Expr::Kind::Const:
        return isFloatType(a->type()) ? a->fval() == b->fval()
                                      : a->ival() == b->ival();
      case Expr::Kind::Sym:
        return a->symbol() == b->symbol() && a->symOffset() == b->symOffset();
      case Expr::Kind::Reg:
        return a->regFile() == b->regFile() && a->regIndex() == b->regIndex();
      case Expr::Kind::Mem:
        return exprEqual(a->addr(), b->addr());
      case Expr::Kind::Bin:
        return a->op() == b->op() && exprEqual(a->lhs(), b->lhs()) &&
               exprEqual(a->rhs(), b->rhs());
      case Expr::Kind::Un:
        return a->op() == b->op() && exprEqual(a->lhs(), b->lhs());
    }
    return false;
}

ExprPtr
substReg(const ExprPtr &e, RegFile file, int index, const ExprPtr &repl)
{
    switch (e->kind()) {
      case Expr::Kind::Const:
      case Expr::Kind::Sym:
        return e;
      case Expr::Kind::Reg:
        return e->isReg(file, index) ? repl : e;
      case Expr::Kind::Mem: {
        ExprPtr a = substReg(e->addr(), file, index, repl);
        return a == e->addr() ? e : makeMem(a, e->type());
      }
      case Expr::Kind::Bin: {
        ExprPtr l = substReg(e->lhs(), file, index, repl);
        ExprPtr r = substReg(e->rhs(), file, index, repl);
        if (l == e->lhs() && r == e->rhs())
            return e;
        return makeBin(e->op(), l, r);
      }
      case Expr::Kind::Un: {
        ExprPtr x = substReg(e->lhs(), file, index, repl);
        return x == e->lhs() ? e : makeUn(e->op(), x, e->type());
      }
    }
    return e;
}

void
forEachNode(const ExprPtr &e, const std::function<void(const Expr &)> &fn)
{
    if (!e)
        return;
    fn(*e);
    switch (e->kind()) {
      case Expr::Kind::Mem:
      case Expr::Kind::Un:
        forEachNode(e->lhs(), fn);
        break;
      case Expr::Kind::Bin:
        forEachNode(e->lhs(), fn);
        forEachNode(e->rhs(), fn);
        break;
      default:
        break;
    }
}

bool
usesReg(const ExprPtr &e, RegFile file, int index)
{
    bool found = false;
    forEachNode(e, [&](const Expr &n) {
        if (n.isReg(file, index))
            found = true;
    });
    return found;
}

bool
containsMem(const ExprPtr &e)
{
    bool found = false;
    forEachNode(e, [&](const Expr &n) {
        if (n.kind() == Expr::Kind::Mem)
            found = true;
    });
    return found;
}

std::vector<ExprPtr>
collectRegs(const ExprPtr &e)
{
    std::vector<ExprPtr> out;
    // forEachNode hands out const Expr&, so re-walk keeping ExprPtrs.
    std::function<void(const ExprPtr &)> walk = [&](const ExprPtr &n) {
        if (!n)
            return;
        if (n->isReg()) {
            out.push_back(n);
            return;
        }
        switch (n->kind()) {
          case Expr::Kind::Mem:
          case Expr::Kind::Un:
            walk(n->lhs());
            break;
          case Expr::Kind::Bin:
            walk(n->lhs());
            walk(n->rhs());
            break;
          default:
            break;
        }
    };
    walk(e);
    return out;
}

std::string
Expr::str() const
{
    std::ostringstream os;
    switch (kind_) {
      case Kind::Const:
        if (isFloatType(type_))
            os << fval_;
        else
            os << ival_;
        break;
      case Kind::Sym:
        os << "_" << sym_;
        if (ival_ > 0)
            os << "+" << ival_;
        else if (ival_ < 0)
            os << ival_;
        break;
      case Kind::Reg:
        os << regFilePrefix(file_) << "[" << ival_ << "]";
        break;
      case Kind::Mem:
        os << (isFloatType(type_) ? "F" : "M") << dataTypeSize(type_) * 8
           << "[" << lhs_->str() << "]";
        break;
      case Kind::Bin:
        os << "(" << lhs_->str() << opName(op_) << rhs_->str() << ")";
        break;
      case Kind::Un:
        if (op_ == Op::Neg || op_ == Op::Not)
            os << opName(op_) << "(" << lhs_->str() << ")";
        else
            os << opName(op_) << "(" << lhs_->str() << ")";
        break;
    }
    return os.str();
}

} // namespace wmstream::rtl
