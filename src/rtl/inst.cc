#include "rtl/inst.h"

#include <sstream>
#include <unordered_map>

#include "support/diag.h"
#include "support/str.h"

namespace wmstream::rtl {

bool
Inst::isTerminator() const
{
    switch (kind) {
      case InstKind::Jump:
      case InstKind::CondJump:
      case InstKind::JumpStream:
      case InstKind::Return:
        return true;
      default:
        return false;
    }
}

bool
Inst::isBranch() const
{
    switch (kind) {
      case InstKind::Jump:
      case InstKind::CondJump:
      case InstKind::JumpStream:
        return true;
      default:
        return false;
    }
}

std::string
Inst::str() const
{
    std::ostringstream os;
    switch (kind) {
      case InstKind::Assign:
        os << dst->str() << " := " << src->str();
        break;
      case InstKind::Load:
        os << dst->str() << " := " << (isFloatType(memType) ? "F" : "M")
           << dataTypeSize(memType) * 8 << "[" << addr->str() << "]";
        break;
      case InstKind::Store:
        os << (isFloatType(memType) ? "F" : "M") << dataTypeSize(memType) * 8
           << "[" << addr->str() << "] := " << src->str();
        break;
      case InstKind::Jump:
        os << "jump " << target;
        break;
      case InstKind::CondJump:
        os << "jump" << (when ? "T" : "F")
           << (side == UnitSide::Int ? "i" : "f") << " " << target;
        break;
      case InstKind::JumpStream:
        os << "jNotDone " << (side == UnitSide::Int ? "r" : "f") << fifo
           << " " << target;
        break;
      case InstKind::StreamIn:
      case InstKind::StreamOut:
        os << (kind == InstKind::StreamIn ? "streamIn " : "streamOut ")
           << (side == UnitSide::Int ? "r" : "f") << fifo << ", "
           << addr->str() << ", " << (count ? count->str() : "inf") << ", "
           << stride << " (" << dataTypeName(memType) << ")";
        break;
      case InstKind::StreamStop:
        os << "streamStop " << (side == UnitSide::Int ? "r" : "f") << fifo;
        break;
      case InstKind::VecOp:
        os << "vec " << dst->str() << " := (" << src->str() << " "
           << opName(vecOp) << " "
           << (vecSrc2 ? vecSrc2->str() : std::string("-")) << ") x "
           << count->str();
        break;
      case InstKind::Call:
        os << "call " << target;
        break;
      case InstKind::Return:
        os << "return";
        break;
    }
    return os.str();
}

Inst
makeAssign(ExprPtr dst, ExprPtr src, std::string comment)
{
    WS_ASSERT(dst && dst->isReg(), "Assign dst must be a register");
    Inst i;
    i.kind = InstKind::Assign;
    i.dst = std::move(dst);
    i.src = std::move(src);
    i.comment = std::move(comment);
    return i;
}

Inst
makeLoad(ExprPtr dst, ExprPtr addr, DataType t, std::string comment)
{
    WS_ASSERT(dst && dst->isReg(), "Load dst must be a register");
    Inst i;
    i.kind = InstKind::Load;
    i.dst = std::move(dst);
    i.addr = std::move(addr);
    i.memType = t;
    i.comment = std::move(comment);
    return i;
}

Inst
makeStore(ExprPtr addr, ExprPtr src, DataType t, std::string comment)
{
    Inst i;
    i.kind = InstKind::Store;
    i.addr = std::move(addr);
    i.src = std::move(src);
    i.memType = t;
    i.comment = std::move(comment);
    return i;
}

Inst
makeJump(std::string target, std::string comment)
{
    Inst i;
    i.kind = InstKind::Jump;
    i.target = std::move(target);
    i.comment = std::move(comment);
    return i;
}

Inst
makeCondJump(UnitSide side, bool when, std::string target,
             std::string comment)
{
    Inst i;
    i.kind = InstKind::CondJump;
    i.side = side;
    i.when = when;
    i.target = std::move(target);
    i.comment = std::move(comment);
    return i;
}

Inst
makeJumpStream(UnitSide side, int fifo, std::string target,
               std::string comment)
{
    Inst i;
    i.kind = InstKind::JumpStream;
    i.side = side;
    i.fifo = fifo;
    i.target = std::move(target);
    i.comment = std::move(comment);
    return i;
}

Inst
makeStreamIn(UnitSide side, int fifo, ExprPtr base, ExprPtr count,
             int64_t stride, DataType t, std::string comment)
{
    Inst i;
    i.kind = InstKind::StreamIn;
    i.side = side;
    i.fifo = fifo;
    i.addr = std::move(base);
    i.count = std::move(count);
    i.stride = stride;
    i.memType = t;
    i.comment = std::move(comment);
    return i;
}

Inst
makeStreamOut(UnitSide side, int fifo, ExprPtr base, ExprPtr count,
              int64_t stride, DataType t, std::string comment)
{
    Inst i = makeStreamIn(side, fifo, std::move(base), std::move(count),
                          stride, t, std::move(comment));
    i.kind = InstKind::StreamOut;
    return i;
}

Inst
makeStreamStop(UnitSide side, int fifo, std::string comment)
{
    Inst i;
    i.kind = InstKind::StreamStop;
    i.side = side;
    i.fifo = fifo;
    i.comment = std::move(comment);
    return i;
}

Inst
makeVecOp(Op op, ExprPtr dstFifo, ExprPtr src1Fifo, ExprPtr src2,
          ExprPtr count, std::string comment)
{
    Inst i;
    i.kind = InstKind::VecOp;
    i.vecOp = op;
    i.dst = std::move(dstFifo);
    i.src = std::move(src1Fifo);
    i.vecSrc2 = std::move(src2);
    i.count = std::move(count);
    i.comment = std::move(comment);
    return i;
}

Inst
makeCall(std::string callee, std::string comment)
{
    Inst i;
    i.kind = InstKind::Call;
    i.target = std::move(callee);
    i.comment = std::move(comment);
    return i;
}

Inst
makeReturn(std::string comment)
{
    Inst i;
    i.kind = InstKind::Return;
    i.comment = std::move(comment);
    return i;
}

std::vector<ExprPtr>
instUses(const Inst &inst)
{
    std::vector<ExprPtr> uses;
    auto add = [&](const ExprPtr &e) {
        if (!e)
            return;
        auto regs = collectRegs(e);
        uses.insert(uses.end(), regs.begin(), regs.end());
    };
    switch (inst.kind) {
      case InstKind::Assign:
        add(inst.src);
        break;
      case InstKind::Load:
        add(inst.addr);
        break;
      case InstKind::Store:
        add(inst.addr);
        add(inst.src);
        break;
      case InstKind::StreamIn:
      case InstKind::StreamOut:
        add(inst.addr);
        add(inst.count);
        break;
      case InstKind::VecOp:
        add(inst.src);
        add(inst.vecSrc2);
        add(inst.count);
        break;
      default:
        break;
    }
    for (const auto &e : inst.extraUses)
        add(e);
    return uses;
}

ExprPtr
instDef(const Inst &inst)
{
    switch (inst.kind) {
      case InstKind::Assign:
      case InstKind::Load:
        return inst.dst;
      default:
        return nullptr;
    }
}

const Inst *
Block::terminator() const
{
    if (insts.empty() || !insts.back().isTerminator())
        return nullptr;
    return &insts.back();
}

Inst *
Block::terminator()
{
    if (insts.empty() || !insts.back().isTerminator())
        return nullptr;
    return &insts.back();
}

Block *
Function::addBlock(const std::string &label)
{
    std::string l = label.empty() ? newLabel() : label;
    blocks_.push_back(std::make_unique<Block>(l));
    return blocks_.back().get();
}

Block *
Function::insertBlockBefore(Block *before, const std::string &label)
{
    std::string l = label.empty() ? newLabel() : label;
    for (auto it = blocks_.begin(); it != blocks_.end(); ++it) {
        if (it->get() == before) {
            it = blocks_.insert(it, std::make_unique<Block>(l));
            return it->get();
        }
    }
    WS_PANIC("insertBlockBefore: block not in function");
}

Block *
Function::findBlock(const std::string &label)
{
    for (auto &b : blocks_)
        if (b->label() == label)
            return b.get();
    return nullptr;
}

ExprPtr
Function::newVReg(DataType t)
{
    if (isFloatType(t))
        return makeReg(RegFile::VFlt, nextVFlt_++, t);
    return makeReg(RegFile::VInt, nextVInt_++, t);
}

std::string
Function::newLabel()
{
    return strFormat("L%d", nextLabel_++);
}

void
Function::recomputeCfg()
{
    std::unordered_map<std::string, Block *> byLabel;
    for (auto &b : blocks_) {
        byLabel[b->label()] = b.get();
        b->succs.clear();
        b->preds.clear();
    }

    auto link = [](Block *from, Block *to) {
        from->succs.push_back(to);
        to->preds.push_back(from);
    };

    for (size_t i = 0; i < blocks_.size(); ++i) {
        Block *b = blocks_[i].get();
        const Inst *term = b->terminator();
        bool falls = true;
        if (term) {
            switch (term->kind) {
              case InstKind::Jump:
                falls = false;
                [[fallthrough]];
              case InstKind::CondJump:
              case InstKind::JumpStream: {
                auto it = byLabel.find(term->target);
                WS_ASSERT(it != byLabel.end(),
                          "branch to unknown label " + term->target);
                link(b, it->second);
                break;
              }
              case InstKind::Return:
                falls = false;
                break;
              default:
                break;
            }
        }
        if (falls && i + 1 < blocks_.size())
            link(b, blocks_[i + 1].get());
    }
}

void
Function::removeUnreachable()
{
    recomputeCfg();
    std::unordered_map<Block *, bool> reached;
    std::vector<Block *> work;
    if (entry()) {
        work.push_back(entry());
        reached[entry()] = true;
    }
    while (!work.empty()) {
        Block *b = work.back();
        work.pop_back();
        for (Block *s : b->succs) {
            if (!reached[s]) {
                reached[s] = true;
                work.push_back(s);
            }
        }
    }
    std::vector<std::unique_ptr<Block>> kept;
    for (auto &b : blocks_)
        if (reached[b.get()])
            kept.push_back(std::move(b));
    blocks_ = std::move(kept);
    recomputeCfg();
}

void
Function::renumber()
{
    int id = 0;
    for (auto &b : blocks_)
        for (auto &inst : b->insts)
            inst.id = id++;
}

int
Function::instCount() const
{
    int n = 0;
    for (const auto &b : blocks_)
        n += static_cast<int>(b->insts.size());
    return n;
}

int64_t
Function::allocFrameSlot(int64_t bytes, int64_t align)
{
    frameSize = (frameSize + align - 1) & ~(align - 1);
    int64_t off = frameSize;
    frameSize += bytes;
    return off;
}

std::string
Function::str() const
{
    std::ostringstream os;
    os << "function " << name_ << " (frame " << frameSize << "):\n";
    for (const auto &b : blocks_) {
        os << b->label() << ":\n";
        for (const auto &inst : b->insts) {
            os << "    " << inst.str();
            if (!inst.comment.empty())
                os << "    -- " << inst.comment;
            os << "\n";
        }
    }
    return os.str();
}

} // namespace wmstream::rtl
