#include "rtl/machine.h"

namespace wmstream::rtl {

MachineTraits
wmTraits()
{
    MachineTraits t;
    t.kind = MachineKind::WM;
    t.hasDualOp = true;
    t.hasStreams = true;
    return t;
}

MachineTraits
scalarTraits()
{
    MachineTraits t;
    t.kind = MachineKind::Scalar;
    t.hasDualOp = false;
    t.hasStreams = false;
    return t;
}

} // namespace wmstream::rtl
