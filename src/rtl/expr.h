/**
 * @file
 * RTL expressions: trees over the hardware's storage cells.
 *
 * Following Benitez & Davidson, the optimizer operates on register
 * transfer lists (RTLs) that "describe the effect of machine
 * instructions" and "have the form of conventional expressions and
 * assignments over the hardware's storage cells". Any particular RTL is
 * machine specific, but the *form* is machine independent, which is what
 * lets the recurrence and streaming passes work on several targets.
 *
 * Expressions are immutable and shared (shared_ptr const trees); all
 * rewriting builds new trees through the factory functions, which also
 * perform algebraic simplification and constant folding so that address
 * expressions stay in a canonical sum-of-products shape the induction
 * variable analysis can recognize.
 */

#ifndef WMSTREAM_RTL_EXPR_H
#define WMSTREAM_RTL_EXPR_H

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

namespace wmstream::rtl {

/** Width and interpretation of a storage cell or value. */
enum class DataType : uint8_t { I8, I16, I32, I64, F32, F64 };

/** Size in bytes of a value of type @p t. */
int dataTypeSize(DataType t);

/** True for F32/F64. */
bool isFloatType(DataType t);

/** Printable name ("i32", "f64", ...). */
const char *dataTypeName(DataType t);

/**
 * Register files.
 *
 * Int/Flt are the architectural files (WM: r0..r31 / f0..f31; the
 * scalar target uses the same names). VInt/VFlt are the unbounded
 * virtual files the code expander targets; register assignment maps
 * them onto the architectural files. CC is the condition-code file:
 * on WM a compare enqueues into the execution unit's condition-code
 * FIFO; cell 0 is the integer unit's FIFO and cell 1 the float unit's.
 */
enum class RegFile : uint8_t { Int, Flt, VInt, VFlt, CC };

/** True for the two virtual files. */
bool isVirtualFile(RegFile f);

/** Printable prefix ("r", "f", "vr", "vf", "cc"). */
const char *regFilePrefix(RegFile f);

/** RTL operators, shared by all targets. */
enum class Op : uint8_t {
    Add, Sub, Mul, Div, Rem,
    And, Or, Xor, Shl, Shr, Sar,
    Eq, Ne, Lt, Le, Gt, Ge,
    Neg, Not, CvtIF, CvtFI, CvtWiden,
};

/** True for the six relational operators. */
bool isRelationalOp(Op op);

/** Printable operator spelling. */
const char *opName(Op op);

/** Relational operator with operands swapped (a < b  ==  b > a). */
Op swapRelational(Op op);

/** Relational operator negated (a < b  ==  !(a >= b)). */
Op negateRelational(Op op);

class Expr;
using ExprPtr = std::shared_ptr<const Expr>;

/**
 * One RTL expression node.
 *
 * Kinds:
 *  - Const: integer or floating literal;
 *  - Sym:   link-time address of a global symbol plus byte offset;
 *  - Reg:   a register cell (file, index);
 *  - Mem:   the memory cell at an address expression;
 *  - Bin:   binary operator over two subtrees;
 *  - Un:    unary operator over one subtree.
 */
class Expr
{
  public:
    enum class Kind : uint8_t { Const, Sym, Reg, Mem, Bin, Un };

    Kind kind() const { return kind_; }
    DataType type() const { return type_; }

    // Const accessors.
    int64_t ival() const { return ival_; }
    double fval() const { return fval_; }

    // Sym accessors.
    const std::string &symbol() const { return sym_; }
    int64_t symOffset() const { return ival_; }

    // Reg accessors.
    RegFile regFile() const { return file_; }
    int regIndex() const { return static_cast<int>(ival_); }

    // Mem accessor.
    const ExprPtr &addr() const { return lhs_; }

    // Bin/Un accessors.
    Op op() const { return op_; }
    const ExprPtr &lhs() const { return lhs_; }
    const ExprPtr &rhs() const { return rhs_; }

    bool isConst() const { return kind_ == Kind::Const; }
    bool isIntConst(int64_t v) const;
    bool isReg() const { return kind_ == Kind::Reg; }
    bool isReg(RegFile f, int idx) const;
    bool isMem() const { return kind_ == Kind::Mem; }
    bool isSym() const { return kind_ == Kind::Sym; }

    /** Render in the paper's RTL notation, e.g. "(r[22]<<3)+r[24]". */
    std::string str() const;

  private:
    friend ExprPtr makeConst(int64_t, DataType);
    friend ExprPtr makeFConst(double, DataType);
    friend ExprPtr makeSym(const std::string &, int64_t);
    friend ExprPtr makeReg(RegFile, int, DataType);
    friend ExprPtr makeMem(ExprPtr, DataType);
    friend ExprPtr makeBinRaw(Op, ExprPtr, ExprPtr, DataType);
    friend ExprPtr makeUnRaw(Op, ExprPtr, DataType);

    Kind kind_;
    DataType type_ = DataType::I32;
    Op op_ = Op::Add;
    RegFile file_ = RegFile::Int;
    int64_t ival_ = 0;     // Const value, Sym offset, Reg index
    double fval_ = 0.0;    // Const float value
    std::string sym_;
    ExprPtr lhs_;          // Mem address, Bin lhs, Un operand
    ExprPtr rhs_;          // Bin rhs
};

/** @name Factories (with folding in makeBin/makeUn) */
/// @{
ExprPtr makeConst(int64_t v, DataType t = DataType::I64);
ExprPtr makeFConst(double v, DataType t = DataType::F64);
ExprPtr makeSym(const std::string &name, int64_t offset = 0);
ExprPtr makeReg(RegFile file, int index, DataType t);
ExprPtr makeMem(ExprPtr addr, DataType t);
/** Build a binary node with constant folding and canonicalization. */
ExprPtr makeBin(Op op, ExprPtr l, ExprPtr r);
/** Build a unary node with constant folding. */
ExprPtr makeUn(Op op, ExprPtr x, DataType result);
/** Build nodes verbatim, no folding (used by tests and parsers). */
ExprPtr makeBinRaw(Op op, ExprPtr l, ExprPtr r, DataType t);
ExprPtr makeUnRaw(Op op, ExprPtr x, DataType t);
/// @}

/** Structural equality. */
bool exprEqual(const ExprPtr &a, const ExprPtr &b);

/** Substitute every occurrence of register (file,index) with @p repl. */
ExprPtr substReg(const ExprPtr &e, RegFile file, int index,
                 const ExprPtr &repl);

/** Apply @p fn to every node of @p e (pre-order). */
void forEachNode(const ExprPtr &e, const std::function<void(const Expr &)> &fn);

/** True if register (file,index) occurs anywhere in @p e. */
bool usesReg(const ExprPtr &e, RegFile file, int index);

/** True if a Mem node occurs anywhere in @p e. */
bool containsMem(const ExprPtr &e);

/** Collect all register nodes in @p e (in traversal order, with dups). */
std::vector<ExprPtr> collectRegs(const ExprPtr &e);

} // namespace wmstream::rtl

#endif // WMSTREAM_RTL_EXPR_H
