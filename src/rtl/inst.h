/**
 * @file
 * RTL instructions, basic blocks, and functions.
 *
 * An Inst is one machine instruction expressed as a register transfer.
 * Loads and stores are explicit kinds carrying an address expression:
 * on WM a load only computes the address (the datum lands in the unit's
 * input FIFO, i.e. register 0), while on scalar targets the destination
 * is an ordinary register. Representing both with one Inst shape is what
 * keeps the recurrence/streaming passes machine-independent.
 *
 * Invariant maintained by the expander and all phases: Mem expression
 * nodes never appear inside Assign instructions; all memory traffic is
 * a Load or Store instruction.
 */

#ifndef WMSTREAM_RTL_INST_H
#define WMSTREAM_RTL_INST_H

#include <memory>
#include <string>
#include <vector>

#include "rtl/expr.h"
#include "support/diag.h"

namespace wmstream::rtl {

/** Instruction kinds (see file comment). */
enum class InstKind : uint8_t {
    Assign,     ///< dst(reg) := src(expr); relational src enqueues CC
    Load,       ///< dst(reg/FIFO) receives Mem[addr] of type dt
    Store,      ///< Mem[addr] of type dt := src(reg/FIFO)
    Jump,       ///< unconditional jump to target
    CondJump,   ///< dequeue CC cell ccIndex; jump to target if == when
    JumpStream, ///< jump to target while stream on (side,fifo) not done
    StreamIn,   ///< start SCU read stream into FIFO (side,fifo)
    StreamOut,  ///< start SCU write stream draining FIFO (side,fifo)
    StreamStop, ///< cancel the stream on FIFO (side,fifo) at loop exit
    VecOp,      ///< VEU: dst FIFO := (src1 FIFO op src2) over count elems
    Call,       ///< call function `target` (args pre-placed in arg regs)
    Return,     ///< return (value pre-placed in r2/f2)
};

/** Which execution unit's FIFO/CC a stream or branch refers to. */
enum class UnitSide : uint8_t { Int = 0, Flt = 1 };

/**
 * One RTL instruction.
 *
 * A plain aggregate: phases freely rewrite fields and rebuild
 * expression trees. The `id` is assigned by Function::renumber() and is
 * used as the paper's "lno" in memory-reference partition vectors. The
 * `comment` is carried into assembly listings (the paper's figures
 * annotate every line).
 */
struct Inst
{
    InstKind kind = InstKind::Assign;

    ExprPtr dst;            ///< Assign/Load destination (Reg)
    ExprPtr src;            ///< Assign/Store source
    ExprPtr addr;           ///< Load/Store/Stream base address
    ExprPtr count;          ///< StreamIn/StreamOut element count (Reg)
    DataType memType = DataType::I32; ///< Load/Store/Stream element type
    int64_t stride = 0;     ///< Stream byte stride

    UnitSide side = UnitSide::Int; ///< CondJump/JumpStream/Stream* unit
    int fifo = 0;           ///< Stream/JumpStream FIFO index (0 or 1)
    bool when = true;       ///< CondJump: jump if CC equals this

    /**
     * VecOp fields: the element-wise operation applied by the vector
     * execution unit. `dst` is the destination output-FIFO register,
     * `src` the first input-FIFO register; `count` gives the element
     * count (a register). vecOp is the operator; vecSrc2 is the second
     * operand: an input-FIFO register, an ordinary (loop-invariant)
     * register, or null for a plain copy.
     */
    Op vecOp = Op::Add;
    ExprPtr vecSrc2;

    std::string target;     ///< Jump/CondJump/JumpStream label, Call name

    int id = -1;            ///< stable id ("lno"), set by renumber()
    std::string comment;    ///< carried into listings

    /**
     * Source provenance: the mini-C position this instruction was
     * expanded from (invalid for synthesized code). The expander stamps
     * it; phases that rewrite an instruction in place keep it, and
     * phases that synthesize replacements copy it from the instruction
     * they replace. Optimization remarks and the per-loop cycle
     * attribution both key off it.
     */
    SourcePos pos;
    /**
     * Innermost source loop this instruction belongs to in the final
     * code, or -1 when outside every loop. Assigned by the driver's
     * loop-tagging step (after all optimization and lowering) using the
     * same loop-id registry the optimization remarks use, so simulator
     * cycles and compiler decisions join on one key.
     */
    int loopId = -1;

    /**
     * Implicit register uses not visible in the other operand fields:
     * argument registers of a Call, the value register of a Return.
     * instUses() includes these so dataflow analyses see them.
     */
    std::vector<ExprPtr> extraUses;

    /** True for instructions that end a basic block. */
    bool isTerminator() const;
    /** True for Jump/CondJump/JumpStream. */
    bool isBranch() const;

    /** Render in RTL notation (one line, no trailing newline). */
    std::string str() const;
};

/** @name Instruction factories */
/// @{
Inst makeAssign(ExprPtr dst, ExprPtr src, std::string comment = "");
Inst makeLoad(ExprPtr dst, ExprPtr addr, DataType t,
              std::string comment = "");
Inst makeStore(ExprPtr addr, ExprPtr src, DataType t,
               std::string comment = "");
Inst makeJump(std::string target, std::string comment = "");
Inst makeCondJump(UnitSide side, bool when, std::string target,
                  std::string comment = "");
Inst makeJumpStream(UnitSide side, int fifo, std::string target,
                    std::string comment = "");
Inst makeStreamIn(UnitSide side, int fifo, ExprPtr base, ExprPtr count,
                  int64_t stride, DataType t, std::string comment = "");
Inst makeStreamOut(UnitSide side, int fifo, ExprPtr base, ExprPtr count,
                   int64_t stride, DataType t, std::string comment = "");
Inst makeStreamStop(UnitSide side, int fifo, std::string comment = "");
/**
 * Vector operation: for count elements, dst(out FIFO) := src1(in FIFO)
 * `op` src2 (in FIFO, invariant register, or null for a copy).
 */
Inst makeVecOp(Op op, ExprPtr dstFifo, ExprPtr src1Fifo, ExprPtr src2,
               ExprPtr count, std::string comment = "");
Inst makeCall(std::string callee, std::string comment = "");
Inst makeReturn(std::string comment = "");
/// @}

/** Registers read by @p inst (with duplicates, in operand order). */
std::vector<ExprPtr> instUses(const Inst &inst);

/** Register written by @p inst, or nullptr. */
ExprPtr instDef(const Inst &inst);

class Function;

/**
 * A basic block: a label, straight-line instructions, and CFG edges.
 *
 * Edges are recomputed by Function::recomputeCfg(); phases that add or
 * remove branches must call it before relying on succs/preds again.
 */
class Block
{
  public:
    explicit Block(std::string label) : label_(std::move(label)) {}

    const std::string &label() const { return label_; }

    std::vector<Inst> insts;
    std::vector<Block *> succs;
    std::vector<Block *> preds;

    /** The terminator, or nullptr if the block falls through. */
    const Inst *terminator() const;
    Inst *terminator();

  private:
    std::string label_;
};

/**
 * A function: blocks in layout order plus virtual register state.
 *
 * Layout order is meaningful: block i falls through to block i+1 when
 * its last instruction is not an unconditional control transfer.
 */
class Function
{
  public:
    explicit Function(std::string name) : name_(std::move(name)) {}

    const std::string &name() const { return name_; }

    /** Append a new block with a fresh or given label. */
    Block *addBlock(const std::string &label = "");
    /** Insert a new block immediately before @p before. */
    Block *insertBlockBefore(Block *before, const std::string &label = "");

    Block *entry() { return blocks_.empty() ? nullptr : blocks_[0].get(); }
    const Block *entry() const
    {
        return blocks_.empty() ? nullptr : blocks_[0].get();
    }

    std::vector<std::unique_ptr<Block>> &blocks() { return blocks_; }
    const std::vector<std::unique_ptr<Block>> &blocks() const
    {
        return blocks_;
    }

    Block *findBlock(const std::string &label);

    /** Allocate a fresh virtual register of the given class. */
    ExprPtr newVReg(DataType t);

    int numVirtualInt() const { return nextVInt_; }
    int numVirtualFlt() const { return nextVFlt_; }

    /** Fresh unique label with prefix "L". */
    std::string newLabel();

    /** Recompute succ/pred edges from terminators and layout order. */
    void recomputeCfg();

    /** Remove blocks unreachable from the entry. */
    void removeUnreachable();

    /** Assign sequential ids to all instructions (the "lno" values). */
    void renumber();

    /** Total instruction count across all blocks. */
    int instCount() const;

    /** Byte size of the stack frame for locals and spills. */
    int64_t frameSize = 0;

    /** Grow the frame by @p bytes (aligned) and return the slot offset. */
    int64_t allocFrameSlot(int64_t bytes, int64_t align);

    /** Render the whole function in RTL notation. */
    std::string str() const;

  private:
    std::string name_;
    std::vector<std::unique_ptr<Block>> blocks_;
    int nextVInt_ = 0;
    int nextVFlt_ = 0;
    int nextLabel_ = 0;
};

} // namespace wmstream::rtl

#endif // WMSTREAM_RTL_INST_H
