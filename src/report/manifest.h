/**
 * @file
 * Run-manifest assembly: every machine-readable artifact one wmc
 * invocation produces, bundled into a single schema_version'd JSON
 * document, plus the Prometheus metrics export and the per-window
 * trace counter tracks derived from the same data.
 *
 * This layer exists because no lower library may know about all the
 * producers at once: obs is below everything, the driver does not
 * link the simulators, and the simulators do not know about compile
 * results. ws_report sits above driver + wmsim + timing + obs and
 * owns the document shapes; wmc (and the schema tests) call in here
 * instead of hand-rolling JSON.
 *
 * Document kinds emitted from this header:
 *  - the per-run stats document (`wmc --stats-json`), in its success,
 *    faulted, and scalar-target variants;
 *  - the run manifest (`wmc --manifest`): tool identity, host
 *    throughput, and the remarks / stats / timeseries sections
 *    embedded as sub-documents;
 *  - the Prometheus text exposition (`wmc --metrics-out`).
 */

#ifndef WMSTREAM_REPORT_MANIFEST_H
#define WMSTREAM_REPORT_MANIFEST_H

#include <cstdint>
#include <string>

#include "driver/compiler.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/timeseries.h"
#include "obs/trace.h"
#include "report/critpath_report.h"
#include "timing/scalar_sim.h"
#include "wmsim/sim.h"

namespace wmstream::report {

/**
 * Host-side (wall-clock) throughput for one run. Everything here is
 * machine-dependent by nature; benchdiff and the regression gates
 * must ignore these fields (tools/benchdiff.py does so explicitly).
 */
struct HostMetrics
{
    double compileWallMs = 0.0;
    double simWallMs = 0.0; ///< 0 when no simulation ran
    uint64_t simCycles = 0; ///< simulated cycles covered by simWallMs

    /** Simulated cycles per wall-clock second (0 when unmeasured). */
    double simCyclesPerSec() const;

    /** {"compile_wall_ms":..,"sim_wall_ms":..,"sim_cycles_per_sec":..} */
    void writeJson(obs::JsonWriter &w) const;
};

/** The "compile" section shared by the stats documents. */
void writeCompileSection(obs::JsonWriter &w,
                         const driver::CompileResult &compiled);

/**
 * The WM stats document `wmc --stats-json` emits on a successful run:
 * schema_version, source/target, exit value, sim config, compile
 * section, "sim" counters, per-loop attribution, and occupancy
 * histograms.
 */
void writeWmStatsDoc(obs::JsonWriter &w, const std::string &source,
                     const driver::CompileResult &compiled,
                     const wmsim::SimConfig &cfg,
                     const wmsim::SimResult &res);

/**
 * The stats document for a faulted WM run: the error line plus a
 * "fault" section with the kind and (for deadlock/livelock) the full
 * forensic report. Consumers key on the presence of "fault".
 */
void writeWmFaultDoc(obs::JsonWriter &w, const std::string &source,
                     const wmsim::SimResult &res);

/** The stats document for the scalar (68020) timing model. */
void writeScalarStatsDoc(obs::JsonWriter &w, const std::string &source,
                         const std::string &modelName,
                         const driver::CompileResult &compiled,
                         const timing::ScalarRunResult &res);

/**
 * One wmc invocation's artifacts, by reference; everything pointed to
 * must outlive the manifest. `compiled` is required; the rest is
 * optional and the written document simply omits absent sections
 * (compile-only runs have no "stats", scalar runs no "timeseries").
 */
struct RunManifest
{
    std::string toolVersion;
    std::string source;
    std::string target; ///< "wm" or "68020"
    HostMetrics host;
    const driver::CompileResult *compiled = nullptr;

    // WM simulator results.
    const wmsim::SimConfig *simConfig = nullptr;
    const wmsim::SimResult *simResult = nullptr;
    const obs::TimeSeries *timeseries = nullptr;
    const CritPathReport *critpath = nullptr;

    // Scalar timing-model results.
    std::string modelName;
    const timing::ScalarRunResult *scalarResult = nullptr;

    /**
     * {"schema_version":1,"kind":"run_manifest","tool":"wmc",
     *  "tool_version":..,"source":..,"target":..,"host":{..},
     *  "remarks":{..},"stats":{..},"timeseries":{..},
     *  "critical_path":{..}}
     * The embedded sections are the exact sub-documents their
     * standalone flags emit, so one parser serves both shapes.
     */
    void writeJson(obs::JsonWriter &w) const;
};

/**
 * Export the manifest's numbers as Prometheus metrics: a wm_run_info
 * gauge carrying identity labels, wm_host_* gauges (wall-clock,
 * machine-dependent), wm_compile_* counters, and every "sim" counter
 * as wm_sim_*.
 */
void exportRunMetrics(obs::MetricsRegistry &m, const RunManifest &man);

/**
 * Add per-window counter tracks ("win.<channel>", one sample per
 * window at the window's start cycle, value = window count / window
 * cycles) for the headline channels to @p tw, so the Chrome trace
 * shows utilization and stall phases at flight-recorder resolution.
 */
void addTimelineCounterTracks(obs::TraceWriter &tw,
                              const obs::TimeSeries &ts);

} // namespace wmstream::report

#endif // WMSTREAM_REPORT_MANIFEST_H
