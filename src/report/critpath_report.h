/**
 * @file
 * Critical-path report assembly: the JSON document, text rendering,
 * and Prometheus export for one run's causal critical-path analysis
 * (`wmc --critpath`, the manifest's "critical_path" section, and the
 * wm_critpath_* metric families).
 *
 * The report is built once by the caller (wmc) from a finished
 * obs::CritPath recording — the backward attribution, the model
 * baseline replay, and one WhatIfRow per scenario, optionally
 * validated by re-simulating the program on the changed machine — and
 * every surface below renders the same struct, so the JSON, the text
 * table, and the metrics can never disagree.
 */

#ifndef WMSTREAM_REPORT_CRITPATH_REPORT_H
#define WMSTREAM_REPORT_CRITPATH_REPORT_H

#include <string>
#include <vector>

#include "obs/critpath.h"
#include "obs/json.h"
#include "obs/metrics.h"

namespace wmstream::report {

/** One what-if scenario: the prediction and (optionally) the truth. */
struct WhatIfRow
{
    std::string name;
    std::string description;
    double predictedCycles = 0.0;  ///< scenario DAG replay (model time)
    double predictedSpeedup = 0.0; ///< baseline replay / scenario replay
    bool validated = false;        ///< re-simulation ran
    double measuredCycles = 0.0;   ///< re-simulated cycles
    double measuredSpeedup = 0.0;  ///< recorded cycles / measuredCycles
    double errorPct = 0.0;         ///< |predicted-measured|/measured*100
};

/** Everything `--critpath` reports, in one renderable struct. */
struct CritPathReport
{
    /** The recording, for unit/cause names; must outlive the report. */
    const obs::CritPath *dag = nullptr;
    obs::CritAnalysis analysis;
    double replayBaselineCycles = 0.0; ///< model-time baseline replay
    std::vector<WhatIfRow> whatIf;
};

/**
 * {"schema_version":1,"kind":"critical_path","valid":..,
 *  "total_cycles":..,"attributed_cycles":..,"path_length":..,
 *  "events":..,"deps":..,"truncated":..,
 *  "rows":[{"unit":..,"cause":..,"loop":..,"cycles":..,"edges":..,
 *           "share":..}],
 *  "what_if":[{"name":..,"description":..,"predicted_cycles":..,
 *              "predicted_speedup":..,"validated":..,
 *              "measured_cycles":..,"measured_speedup":..,
 *              "error_pct":..}]}
 * Rows are ordered by critical cycles, descending. When the recording
 * was truncated, valid is false and rows/what_if are empty.
 */
void writeCritPathDoc(obs::JsonWriter &w, const CritPathReport &rep);

/** Human-readable bottleneck table plus the what-if predictions. */
std::string renderCritPathText(const CritPathReport &rep);

/**
 * wm_critpath_total_cycles / _attributed_cycles / _path_length /
 * _events gauges, one wm_critpath_cycles{unit,cause,loop} sample per
 * attribution row, and wm_critpath_predicted_speedup{scenario} (plus
 * _measured_speedup for validated scenarios).
 */
void exportCritPathMetrics(obs::MetricsRegistry &m,
                           const CritPathReport &rep);

} // namespace wmstream::report

#endif // WMSTREAM_REPORT_CRITPATH_REPORT_H
