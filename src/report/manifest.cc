#include "report/manifest.h"

#include "obs/counters.h"
#include "support/diag.h"

namespace wmstream::report {

double
HostMetrics::simCyclesPerSec() const
{
    if (simWallMs <= 0.0)
        return 0.0;
    return static_cast<double>(simCycles) / (simWallMs / 1000.0);
}

void
HostMetrics::writeJson(obs::JsonWriter &w) const
{
    w.beginObject();
    w.field("compile_wall_ms", compileWallMs);
    w.field("sim_wall_ms", simWallMs);
    w.field("sim_cycles", simCycles);
    w.field("sim_cycles_per_sec", simCyclesPerSec());
    w.endObject();
}

void
writeCompileSection(obs::JsonWriter &w,
                    const driver::CompileResult &compiled)
{
    w.key("compile");
    w.beginObject();
    w.field("recurrences_optimized",
            static_cast<int64_t>(compiled.totalRecurrences()));
    w.field("streams", static_cast<int64_t>(compiled.totalStreams()));
    w.field("loops_vectorized",
            static_cast<int64_t>(compiled.totalVectorized()));
    if (!compiled.passProfiles.empty()) {
        w.key("passes");
        obs::writePassProfilesJson(w, compiled.passProfiles);
    }
    // Static FIFO verdict (--infer-fifo-depth); absent when the
    // analysis did not run, like every other optional section.
    if (compiled.fifoRequirements.analyzed) {
        const verify::FifoRequirements &fr = compiled.fifoRequirements;
        w.key("fifo_requirements");
        w.beginObject();
        w.field("verdict", fr.verdict);
        w.field("deadlock_free", fr.deadlockFree);
        w.field("configured_depth",
                static_cast<int64_t>(fr.configuredDepth));
        w.field("min_depth", static_cast<int64_t>(fr.minDepth));
        w.key("queues");
        w.beginArray();
        for (const auto &q : fr.queues) {
            w.beginObject();
            w.field("queue", q.name);
            w.field("min_depth", static_cast<int64_t>(q.minDepth));
            w.field("streamed", q.streamed);
            w.field("bounded", q.bounded);
            w.endObject();
        }
        w.endArray();
        w.endObject();
    }
    w.endObject();
}

void
writeWmStatsDoc(obs::JsonWriter &w, const std::string &source,
                const driver::CompileResult &compiled,
                const wmsim::SimConfig &cfg, const wmsim::SimResult &res)
{
    obs::CounterRegistry reg;
    res.stats.exportCounters(reg);
    w.beginObject();
    w.field("schema_version", int64_t{1});
    w.field("source", source);
    w.field("target", "wm");
    w.field("exit_value", res.returnValue);
    w.key("config");
    w.beginObject();
    w.field("mem_latency", static_cast<int64_t>(cfg.memLatency));
    w.field("mem_ports", static_cast<int64_t>(cfg.memPorts));
    w.field("data_fifo_depth",
            static_cast<int64_t>(cfg.dataFifoDepth));
    w.field("veu_lanes", static_cast<int64_t>(cfg.veuLanes));
    w.endObject();
    writeCompileSection(w, compiled);
    w.key("sim");
    reg.writeJson(w);
    // Per-loop cycle attribution, keyed by the same loop ids the
    // --remarks output uses; wmreport joins the two.
    w.key("loops");
    w.beginArray();
    for (const auto &lb : res.stats.loops) {
        w.beginObject();
        w.field("loop", static_cast<int64_t>(lb.loopId));
        w.field("cycles", static_cast<int64_t>(lb.cycles));
        w.field("ieu_stall_cycles",
                static_cast<int64_t>(lb.ieuStallCycles));
        w.field("feu_stall_cycles",
                static_cast<int64_t>(lb.feuStallCycles));
        w.field("ifu_stall_cycles",
                static_cast<int64_t>(lb.ifuStallCycles));
        w.field("dominant_stall",
                wmsim::stallCauseName(lb.dominantStall()));
        w.key("stalls");
        w.beginObject();
        for (size_t c = 1;
             c < static_cast<size_t>(wmsim::StallCause::kCount); ++c)
            if (lb.stalls.byCause[c])
                w.field(wmsim::stallCauseName(
                            static_cast<wmsim::StallCause>(c)),
                        static_cast<int64_t>(lb.stalls.byCause[c]));
        w.endObject();
        w.endObject();
    }
    w.endArray();
    w.key("occupancy");
    w.beginObject();
    for (const auto &s : res.stats.occupancy) {
        w.key(s.name);
        s.hist.writeJson(w);
    }
    w.endObject();
    w.endObject();
}

void
writeWmFaultDoc(obs::JsonWriter &w, const std::string &source,
                const wmsim::SimResult &res)
{
    bool wedge = res.fault == wmsim::SimFault::Deadlock ||
                 res.fault == wmsim::SimFault::Livelock;
    w.beginObject();
    w.field("schema_version", int64_t{1});
    w.field("source", source);
    w.field("target", "wm");
    w.field("error", res.error);
    w.key("fault");
    w.beginObject();
    w.field("kind", wmsim::simFaultName(res.fault));
    if (wedge) {
        w.key("report");
        res.faultReport.writeJson(w);
    }
    w.endObject();
    w.endObject();
}

void
writeScalarStatsDoc(obs::JsonWriter &w, const std::string &source,
                    const std::string &modelName,
                    const driver::CompileResult &compiled,
                    const timing::ScalarRunResult &res)
{
    obs::CounterRegistry reg;
    res.exportCounters(reg);
    w.beginObject();
    w.field("schema_version", int64_t{1});
    w.field("source", source);
    w.field("target", "68020");
    w.field("model", modelName);
    if (res.ok) {
        w.field("exit_value", res.returnValue);
    } else {
        // Faulted scalar runs keep the compile/sim sections (partial
        // counters are still useful forensics) and add the same
        // "fault" shape the WM fault doc uses, so consumers key on
        // the presence of "fault" for both targets.
        w.field("error", res.error);
        w.key("fault");
        w.beginObject();
        w.field("kind", "runtime_error");
        w.endObject();
    }
    w.field("weighted_cycles", res.cycles);
    writeCompileSection(w, compiled);
    w.key("sim");
    reg.writeJson(w);
    w.endObject();
}

void
RunManifest::writeJson(obs::JsonWriter &w) const
{
    WS_ASSERT(compiled != nullptr, "manifest needs a compile result");
    w.beginObject();
    w.field("schema_version", int64_t{1});
    w.field("kind", "run_manifest");
    w.field("tool", "wmc");
    w.field("tool_version", toolVersion);
    w.field("source", source);
    w.field("target", target);
    w.key("host");
    host.writeJson(w);
    w.key("remarks");
    compiled->remarks.writeJson(w, source);
    if (target == "wm" && simResult && simConfig) {
        w.key("stats");
        if (simResult->fault != wmsim::SimFault::None)
            writeWmFaultDoc(w, source, *simResult);
        else
            writeWmStatsDoc(w, source, *compiled, *simConfig,
                            *simResult);
    } else if (scalarResult) {
        w.key("stats");
        writeScalarStatsDoc(w, source, modelName, *compiled,
                            *scalarResult);
    }
    else if (compiled->fifoRequirements.analyzed) {
        // Compile-only manifest: no stats section to host the compile
        // report, but the static FIFO verdict was computed and is the
        // very point of an --infer-fifo-depth compile — surface the
        // compile section (which carries fifo_requirements) directly.
        writeCompileSection(w, *compiled);
    }
    if (timeseries) {
        w.key("timeseries");
        timeseries->writeJson(w);
    }
    if (critpath) {
        w.key("critical_path");
        writeCritPathDoc(w, *critpath);
    }
    w.endObject();
}

void
exportRunMetrics(obs::MetricsRegistry &m, const RunManifest &man)
{
    WS_ASSERT(man.compiled != nullptr,
              "metrics export needs a compile result");
    m.gauge("run_info", 1.0,
            {{"source", man.source},
             {"target", man.target},
             {"version", man.toolVersion}},
            "Identity of the wmc run that produced this scrape.");
    m.gauge("host_compile_wall_ms", man.host.compileWallMs, {},
            "Compiler wall-clock time (machine-dependent).");
    if (man.host.simWallMs > 0.0) {
        m.gauge("host_sim_wall_ms", man.host.simWallMs, {},
                "Simulator wall-clock time (machine-dependent).");
        m.gauge("host_sim_cycles_per_sec", man.host.simCyclesPerSec(),
                {},
                "Simulated cycles per wall-clock second "
                "(machine-dependent).");
    }
    m.counter("compile_recurrences_optimized",
              static_cast<double>(man.compiled->totalRecurrences()));
    m.counter("compile_streams",
              static_cast<double>(man.compiled->totalStreams()));
    m.counter("compile_loops_vectorized",
              static_cast<double>(man.compiled->totalVectorized()));
    // Fault disposition: 0 on clean runs, 1 with the kind (and for
    // wedges the forensic signature) as labels, so a dashboard can
    // alert on faulted runs without parsing the stats document.
    if (man.simResult) {
        const wmsim::SimResult &r = *man.simResult;
        if (r.fault == wmsim::SimFault::None) {
            m.gauge("sim_fault", 0.0, {{"kind", "none"}},
                    "1 when the run faulted; labels carry the kind.");
        } else {
            bool wedge = r.fault == wmsim::SimFault::Deadlock ||
                         r.fault == wmsim::SimFault::Livelock;
            std::vector<obs::MetricLabel> labels = {
                {"kind", wmsim::simFaultName(r.fault)}};
            if (wedge)
                labels.push_back(
                    {"signature", r.faultReport.signature()});
            m.gauge("sim_fault", 1.0, labels,
                    "1 when the run faulted; labels carry the kind.");
        }
    } else if (man.scalarResult) {
        m.gauge("sim_fault", man.scalarResult->ok ? 0.0 : 1.0,
                {{"kind",
                  man.scalarResult->ok ? "none" : "runtime_error"}},
                "1 when the run faulted; labels carry the kind.");
    }
    obs::CounterRegistry reg;
    if (man.simResult)
        man.simResult->stats.exportCounters(reg);
    else if (man.scalarResult)
        man.scalarResult->exportCounters(reg);
    m.fromCounters(reg, "sim.");
    if (man.critpath)
        exportCritPathMetrics(m, *man.critpath);
}

void
addTimelineCounterTracks(obs::TraceWriter &tw, const obs::TimeSeries &ts)
{
    // The headline channels only: per-unit utilization and stall
    // fractions, queue pressure, and live streams. Full-resolution
    // per-cycle counters are already on the trace; these tracks show
    // the same phases the wmreport heat-strips render.
    static const char *const kTracks[] = {
        "ieu.executed",      "feu.executed",
        "ifu.executed",      "ieu.stall_cycles",
        "feu.stall_cycles",  "ifu.stall_cycles",
        "occ.inst_q.ieu",    "occ.inst_q.feu",
        "scu.active",
    };
    for (const char *name : kTracks) {
        int c = ts.channelIndex(name);
        if (c < 0)
            continue;
        std::string track = std::string("win.") + name;
        for (const obs::TimeSeries::Window &win : ts.windows()) {
            if (win.cycles == 0)
                continue;
            tw.counter(track, win.start,
                       static_cast<double>(
                           win.counts[static_cast<size_t>(c)]) /
                           static_cast<double>(win.cycles));
        }
    }
}

} // namespace wmstream::report
