#include "report/critpath_report.h"

#include "support/str.h"

namespace wmstream::report {

namespace {

double
share(uint64_t cycles, uint64_t total)
{
    return total ? static_cast<double>(cycles) /
                       static_cast<double>(total)
                 : 0.0;
}

} // namespace

void
writeCritPathDoc(obs::JsonWriter &w, const CritPathReport &rep)
{
    const obs::CritPath &dag = *rep.dag;
    const obs::CritAnalysis &an = rep.analysis;
    w.beginObject();
    w.field("schema_version", int64_t{1});
    w.field("kind", "critical_path");
    w.field("valid", an.valid);
    w.field("total_cycles", static_cast<int64_t>(an.totalCycles));
    w.field("attributed_cycles", static_cast<int64_t>(an.attributed));
    w.field("path_length", static_cast<int64_t>(an.pathLength));
    w.field("events", static_cast<int64_t>(dag.eventCount()));
    w.field("deps", static_cast<int64_t>(dag.depCount()));
    w.field("truncated", dag.truncated());
    w.key("rows");
    w.beginArray();
    for (const auto &r : an.rows) {
        w.beginObject();
        w.field("unit", dag.unitName(r.unit));
        w.field("cause", dag.causeName(r.cause));
        w.field("loop", static_cast<int64_t>(r.loop));
        w.field("cycles", static_cast<int64_t>(r.cycles));
        w.field("edges", static_cast<int64_t>(r.edges));
        w.field("share", share(r.cycles, an.totalCycles));
        w.endObject();
    }
    w.endArray();
    w.key("what_if");
    w.beginArray();
    for (const auto &wi : rep.whatIf) {
        w.beginObject();
        w.field("name", wi.name);
        w.field("description", wi.description);
        w.field("predicted_cycles", wi.predictedCycles);
        w.field("predicted_speedup", wi.predictedSpeedup);
        w.field("validated", wi.validated);
        if (wi.validated) {
            w.field("measured_cycles", wi.measuredCycles);
            w.field("measured_speedup", wi.measuredSpeedup);
            w.field("error_pct", wi.errorPct);
        }
        w.endObject();
    }
    w.endArray();
    w.endObject();
}

std::string
renderCritPathText(const CritPathReport &rep)
{
    const obs::CritPath &dag = *rep.dag;
    const obs::CritAnalysis &an = rep.analysis;
    std::string out;
    if (!an.valid) {
        out += dag.truncated()
                   ? "critical path: recording truncated (event cap "
                     "hit); attribution unavailable\n"
                   : "critical path: no recording\n";
        return out;
    }
    out += strFormat("critical path: %llu cycles attributed over %llu "
                     "critical edges (%zu events, %zu deps)\n",
                     static_cast<unsigned long long>(an.attributed),
                     static_cast<unsigned long long>(an.pathLength),
                     dag.eventCount(), dag.depCount());
    out += strFormat("  %-6s %-20s %6s %12s %8s\n", "unit", "cause",
                     "loop", "cycles", "share");
    for (const auto &r : an.rows) {
        std::string loop =
            r.loop < 0 ? std::string("-")
                       : strFormat("%d", static_cast<int>(r.loop));
        out += strFormat("  %-6s %-20s %6s %12llu %7.1f%%\n",
                         dag.unitName(r.unit).c_str(),
                         dag.causeName(r.cause).c_str(), loop.c_str(),
                         static_cast<unsigned long long>(r.cycles),
                         100.0 * share(r.cycles, an.totalCycles));
    }
    if (!rep.whatIf.empty()) {
        out += "what-if (DAG replay; measured rows re-simulated):\n";
        for (const auto &wi : rep.whatIf) {
            out += strFormat("  %-18s %-36s predicted %.2fx",
                             wi.name.c_str(), wi.description.c_str(),
                             wi.predictedSpeedup);
            if (wi.validated)
                out += strFormat("  measured %.2fx  error %.1f%%",
                                 wi.measuredSpeedup, wi.errorPct);
            else
                out += "  (not validated)";
            out += "\n";
        }
    }
    return out;
}

void
exportCritPathMetrics(obs::MetricsRegistry &m, const CritPathReport &rep)
{
    const obs::CritPath &dag = *rep.dag;
    const obs::CritAnalysis &an = rep.analysis;
    m.gauge("critpath_valid", an.valid ? 1.0 : 0.0, {},
            "1 when the recording completed and attribution ran.");
    m.gauge("critpath_events", static_cast<double>(dag.eventCount()),
            {}, "Events recorded in the scheduling DAG.");
    if (!an.valid)
        return;
    m.gauge("critpath_total_cycles",
            static_cast<double>(an.totalCycles), {},
            "Cycle of the end event (== simulated cycles).");
    m.gauge("critpath_attributed_cycles",
            static_cast<double>(an.attributed), {},
            "Critical cycles attributed (sums exactly to total).");
    m.gauge("critpath_path_length",
            static_cast<double>(an.pathLength), {},
            "Critical edges walked end to root.");
    for (const auto &r : an.rows)
        m.gauge("critpath_cycles", static_cast<double>(r.cycles),
                {{"unit", dag.unitName(r.unit)},
                 {"cause", dag.causeName(r.cause)},
                 {"loop", strFormat("%d", static_cast<int>(r.loop))}},
                "Critical cycles per (unit, cause, loop) class.");
    for (const auto &wi : rep.whatIf) {
        m.gauge("critpath_predicted_speedup", wi.predictedSpeedup,
                {{"scenario", wi.name}},
                "What-if speedup predicted by DAG replay.");
        if (wi.validated)
            m.gauge("critpath_measured_speedup", wi.measuredSpeedup,
                    {{"scenario", wi.name}},
                    "What-if speedup measured by re-simulation.");
    }
}

} // namespace wmstream::report
