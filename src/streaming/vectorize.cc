#include "streaming/vectorize.h"

#include "support/diag.h"

namespace wmstream::streaming {

using rtl::Expr;
using rtl::ExprPtr;
using rtl::Inst;
using rtl::InstKind;
using rtl::Op;
using rtl::RegFile;

namespace {

bool
isInFifoReg(const ExprPtr &e)
{
    return e && e->isReg() &&
           (e->regFile() == RegFile::Int || e->regFile() == RegFile::Flt) &&
           (e->regIndex() == 0 || e->regIndex() == 1);
}

/** Identity of a FIFO register: (side, index). */
std::pair<int, int>
fifoId(const ExprPtr &e)
{
    return {e->regFile() == RegFile::Flt ? 1 : 0, e->regIndex()};
}

bool
isVecOperator(Op op)
{
    switch (op) {
      case Op::Add: case Op::Sub: case Op::Mul: case Op::Div:
      case Op::And: case Op::Or: case Op::Xor:
      case Op::Shl: case Op::Shr: case Op::Sar:
        return true;
      default:
        return false;
    }
}

/**
 * Find the count register shared by the streams feeding @p block: the
 * preceding block's StreamIn/StreamOut instructions whose FIFO ids
 * appear in the loop body. Returns null when any is unbounded or when
 * the counts disagree.
 */
ExprPtr
sharedStreamCount(rtl::Function &fn, rtl::Block *loopBlock,
                  const std::vector<std::pair<int, int>> &usedFifos)
{
    // The preheader is the layout predecessor (streaming built it).
    rtl::Block *pre = nullptr;
    auto &blocks = fn.blocks();
    for (size_t i = 0; i + 1 < blocks.size(); ++i)
        if (blocks[i + 1].get() == loopBlock)
            pre = blocks[i].get();
    if (!pre)
        return nullptr;

    ExprPtr count;
    int found = 0;
    for (const Inst &inst : pre->insts) {
        if (inst.kind != InstKind::StreamIn &&
                inst.kind != InstKind::StreamOut) {
            continue;
        }
        int side = inst.side == rtl::UnitSide::Flt ? 1 : 0;
        bool used = false;
        for (auto [s, f] : usedFifos)
            if (s == side && f == inst.fifo)
                used = true;
        if (!used)
            continue;
        if (!inst.count)
            return nullptr; // unbounded stream: cannot vectorize
        if (!count) {
            count = inst.count;
        } else if (!rtl::exprEqual(count, inst.count)) {
            return nullptr;
        }
        ++found;
    }
    return found == static_cast<int>(usedFifos.size()) ? count : nullptr;
}

} // anonymous namespace

VectorizeReport
runVectorize(rtl::Function &fn, const rtl::MachineTraits &traits)
{
    VectorizeReport report;
    if (!traits.hasStreams)
        return report;

    for (auto &bp : fn.blocks()) {
        rtl::Block *b = bp.get();
        // Pattern: [Assign outFifo := elementwise] + [JumpStream self].
        if (b->insts.size() != 2)
            continue;
        Inst &body = b->insts[0];
        Inst &jump = b->insts[1];
        if (jump.kind != InstKind::JumpStream ||
                jump.target != b->label()) {
            continue;
        }
        if (body.kind != InstKind::Assign || !isInFifoReg(body.dst))
            continue;

        ExprPtr src1, src2;
        Op op = Op::Or;
        const ExprPtr &s = body.src;
        if (isInFifoReg(s)) {
            src1 = s; // plain copy
            op = Op::Add;
            src2 = nullptr;
        } else if (s->kind() == Expr::Kind::Bin && isVecOperator(s->op())) {
            if (!isInFifoReg(s->lhs()))
                continue; // first operand must be the element stream
            src1 = s->lhs();
            src2 = s->rhs();
            op = s->op();
            // Second operand: another input FIFO, an invariant plain
            // register, or a constant. A register written in this loop
            // would be a recurrence — but the loop body IS this single
            // instruction, whose only destination is the FIFO, so any
            // plain register here is invariant by construction.
            bool ok = isInFifoReg(src2) || src2->isReg() || src2->isConst();
            if (!ok)
                continue;
            // Each queue may be consumed once per element.
            if (isInFifoReg(src2) && fifoId(src2) == fifoId(src1))
                continue;
        } else {
            continue;
        }

        std::vector<std::pair<int, int>> used;
        used.push_back(fifoId(body.dst));
        used.push_back(fifoId(src1));
        if (src2 && isInFifoReg(src2))
            used.push_back(fifoId(src2));

        ExprPtr count = sharedStreamCount(fn, b, used);
        if (!count)
            continue;

        Inst vec = rtl::makeVecOp(op, body.dst, src1, src2, count,
                                  "vector operation (VEU)");
        b->insts.clear();
        b->insts.push_back(std::move(vec));
        ++report.loopsVectorized;
    }

    fn.recomputeCfg();
    fn.removeUnreachable();
    fn.renumber();
    return report;
}

} // namespace wmstream::streaming
