#include "streaming/streaming.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "cfg/liveness.h"
#include "opt/indvars.h"
#include "recurrence/partitions.h"
#include "support/diag.h"
#include "support/str.h"

namespace wmstream::streaming {

using cfg::RegKey;
using opt::BasicIV;
using opt::LinForm;
using recurrence::MemRef;
using recurrence::Partition;
using recurrence::PartitionSet;
using rtl::DataType;
using rtl::ExprPtr;
using rtl::Inst;
using rtl::InstKind;
using rtl::Op;
using rtl::UnitSide;

namespace {

/** Step 1: the loop's trip count. */
struct TripCount
{
    enum class Kind { Unknown, Expr, Const };
    Kind kind = Kind::Unknown;
    int64_t constVal = 0;
    /** T = sign * (bound - iv) + addend, evaluated in the preheader. */
    const BasicIV *iv = nullptr;
    LinForm bound;
    int sign = 1;
    int64_t addend = 0;
    /** The compare and branch instructions realizing the loop test. */
    rtl::Block *latch = nullptr;
    size_t cmpIndex = 0;
    size_t jmpIndex = 0;
};

/**
 * Derive the trip count of a bottom-tested loop: the latch ends with
 * compare + conditional jump back to the header, the compare relates
 * the just-incremented IV to a loop-invariant bound, and the step is
 * +/-1 (wider steps fall back to infinite streams).
 */
TripCount
deriveTripCount(cfg::Loop &loop, const cfg::DominatorTree &dt,
                opt::IndVarAnalysis &ivs)
{
    TripCount tc;
    if (loop.latches.size() != 1)
        return tc;
    rtl::Block *latch = loop.latches[0];
    if (latch->insts.size() < 2)
        return tc;
    const Inst &jmp = latch->insts.back();
    if (jmp.kind != InstKind::CondJump ||
            jmp.target != loop.header->label()) {
        return tc;
    }
    // Find the compare feeding this branch: the last CC write of the
    // branch's side.
    size_t cmpIdx = latch->insts.size();
    for (size_t i = latch->insts.size() - 1; i-- > 0;) {
        const Inst &inst = latch->insts[i];
        if (inst.kind == InstKind::Assign &&
                inst.dst->regFile() == rtl::RegFile::CC &&
                inst.dst->regIndex() ==
                    (jmp.side == UnitSide::Int ? 0 : 1)) {
            cmpIdx = i;
            break;
        }
    }
    if (cmpIdx >= latch->insts.size())
        return tc;
    const Inst &cmp = latch->insts[cmpIdx];
    if (cmp.src->kind() != rtl::Expr::Kind::Bin ||
            !rtl::isRelationalOp(cmp.src->op())) {
        return tc;
    }

    for (const BasicIV &iv : ivs.basicIVs()) {
        if (iv.step != 1 && iv.step != -1)
            continue;
        opt::InstPoint at{latch, cmpIdx};
        LinForm lf = ivs.linearize(cmp.src->lhs(), iv, at);
        LinForm rf = ivs.linearize(cmp.src->rhs(), iv, at);
        if (!lf.valid || !rf.valid)
            continue;
        Op rel = cmp.src->op();
        // Normalize to iv-side on the left.
        if (lf.coeff == 0 && rf.coeff == 1) {
            std::swap(lf, rf);
            rel = rtl::swapRelational(rel);
        }
        if (lf.coeff != 1 || rf.coeff != 0)
            continue;
        if (lf.baseKind != LinForm::Base::None)
            continue;
        if (rf.baseKind == LinForm::Base::Unknown)
            continue;
        if (!jmp.when)
            rel = rtl::negateRelational(rel);
        // Continue while (iv_entry + lf.offset) rel bound.
        // With d = lf.offset (normally == step), body executions:
        //   T = number of k >= 1 until (iv0 + k*step + (d - step)) fails.
        // We require d == step (the canonical bottom test).
        if (lf.offset != iv.step)
            continue;
        int64_t s = iv.step;
        int sign;
        int64_t addend;
        bool ok = true;
        switch (rel) {
          case Op::Lt:
            ok = s > 0;
            sign = 1;
            addend = 0;
            break; // T = B - iv0
          case Op::Le:
            ok = s > 0;
            sign = 1;
            addend = 1;
            break; // T = B - iv0 + 1
          case Op::Gt:
            ok = s < 0;
            sign = -1;
            addend = 0;
            break; // T = iv0 - B
          case Op::Ge:
            ok = s < 0;
            sign = -1;
            addend = 1;
            break;
          case Op::Ne:
            sign = s > 0 ? 1 : -1;
            addend = 0;
            break;
          default:
            ok = false;
            sign = 1;
            addend = 0;
            break;
        }
        if (!ok)
            continue;

        tc.iv = &iv;
        tc.bound = rf; // bound value = base + rf.offset
        tc.sign = sign;
        tc.addend = addend;
        tc.latch = latch;
        tc.cmpIndex = cmpIdx;
        tc.jmpIndex = latch->insts.size() - 1;
        tc.kind = TripCount::Kind::Expr;
        (void)dt;
        return tc;
    }
    return tc;
}

/** Source position of a memory reference's instruction. */
SourcePos
refPos(const MemRef &ref)
{
    return ref.block->insts[ref.index].pos;
}

/** Best source position for a loop: first stamped inst in the header,
 *  else first stamped inst anywhere in the loop. */
SourcePos
loopPos(const cfg::Loop &loop)
{
    for (const Inst &inst : loop.header->insts)
        if (inst.pos.valid())
            return inst.pos;
    for (rtl::Block *b : loop.blocks)
        for (const Inst &inst : b->insts)
            if (inst.pos.valid())
                return inst.pos;
    return {};
}

/** One stream the pass decided to create. */
struct PlannedStream
{
    MemRef ref;
    UnitSide side;
    int fifo = 0;
    int64_t stride = 0;
    // For loads: the single consuming use to rewrite.
    rtl::Block *useBlock = nullptr;
    size_t useIndex = 0;
};

ExprPtr
fifoReg(UnitSide side, int fifo, bool flt)
{
    WS_ASSERT((side == UnitSide::Flt) == flt, "FIFO side/type mismatch");
    return rtl::makeReg(flt ? rtl::RegFile::Flt : rtl::RegFile::Int, fifo,
                        flt ? DataType::F64 : DataType::I64);
}

/** Materialize a LinForm value (base + offset) at the preheader end. */
ExprPtr
materializeBase(rtl::Function &fn, rtl::Block *pre, const LinForm &base,
                int64_t extra)
{
    size_t at = pre->insts.size();
    if (pre->terminator())
        --at;
    auto insert = [&](Inst inst) {
        pre->insts.insert(pre->insts.begin() + static_cast<ptrdiff_t>(at++),
                          std::move(inst));
    };
    switch (base.baseKind) {
      case LinForm::Base::Sym: {
        ExprPtr t = fn.newVReg(DataType::I64);
        insert(rtl::makeAssign(t,
                               rtl::makeSym(base.sym, base.offset + extra),
                               "stream base address"));
        return t;
      }
      case LinForm::Base::Reg: {
        if (base.offset + extra == 0)
            return base.baseReg;
        ExprPtr t = fn.newVReg(DataType::I64);
        insert(rtl::makeAssign(
            t,
            rtl::makeBin(Op::Add, base.baseReg,
                         rtl::makeConst(base.offset + extra)),
            "stream base address"));
        return t;
      }
      default: {
        ExprPtr t = fn.newVReg(DataType::I64);
        insert(rtl::makeAssign(t, rtl::makeConst(base.offset + extra),
                               "stream base address"));
        return t;
      }
    }
}

bool
streamLoop(rtl::Function &fn, cfg::Loop &loop,
           const cfg::DominatorTree &dt, const rtl::MachineTraits &traits,
           int minTripCount, StreamingReport &report,
           obs::RemarkCollector *remarks, bool injectCountBug,
           bool injectPopBug)
{
    // Remark plumbing: resolve the loop's registry id (get-or-create,
    // upgrading the record with a position recovered from instruction
    // provenance) and build remarks against it.
    int loopId = -1;
    SourcePos loopLoc = loopPos(loop);
    if (remarks) {
        loopId = remarks->loopId(fn.name(), loop.header->label(), loopLoc);
        if (const obs::LoopRecord *lr = remarks->findLoop(loopId);
            lr && lr->loc.valid())
            loopLoc = lr->loc;
    }
    auto missed = [&](const char *reason, SourcePos at = {}) {
        obs::Remark r;
        r.pass = "streaming";
        r.function = fn.name();
        r.loopId = loopId;
        r.loc = at.valid() ? at : loopLoc;
        r.verdict = obs::RemarkVerdict::Missed;
        r.reason = reason;
        return r;
    };

    // Loops containing calls cannot stream: the callee's own loads and
    // stores share the data FIFOs.
    for (rtl::Block *b : loop.blocks)
        for (const Inst &inst : b->insts)
            if (inst.kind == InstKind::Call ||
                    inst.kind == InstKind::StreamIn ||
                    inst.kind == InstKind::StreamOut) {
                if (remarks && inst.kind == InstKind::Call)
                    remarks->add(missed("contains-call", inst.pos)
                                     .arg("callee", inst.target));
                return false;
            }

    opt::IndVarAnalysis ivs(fn, loop, dt, traits);
    PartitionSet parts =
        recurrence::buildPartitions(fn, loop, dt, ivs, traits);

    TripCount tc = deriveTripCount(loop, dt, ivs);

    // Step 1: a compile-time trip count of <= 3 is not worth streaming.
    if (tc.kind == TripCount::Kind::Expr && tc.iv &&
            tc.bound.baseKind == LinForm::Base::None) {
        // The IV's initial value: the unique out-of-loop definition of
        // the IV register that dominates the header, when constant.
        const rtl::Inst *initDef = nullptr;
        int outDefs = 0;
        for (auto &bp : fn.blocks()) {
            if (loop.contains(bp.get()))
                continue;
            for (const Inst &inst : bp->insts) {
                auto d = rtl::instDef(inst);
                if (d && d->isReg(tc.iv->reg->regFile(),
                                  tc.iv->reg->regIndex())) {
                    ++outDefs;
                    initDef = &inst;
                }
            }
        }
        if (outDefs == 1 && initDef->kind == InstKind::Assign &&
                initDef->src->isConst() &&
                !rtl::isFloatType(initDef->src->type())) {
            tc.kind = TripCount::Kind::Const;
            tc.constVal = tc.sign * (tc.bound.offset -
                                     initDef->src->ival()) +
                          tc.addend;
        }
    }
    if (tc.kind == TripCount::Kind::Const && tc.constVal < minTripCount) {
        if (remarks)
            remarks->add(missed("trip-count-too-small")
                             .arg("trip_count", tc.constVal)
                             .arg("min_trip_count", minTripCount));
        return false;
    }

    bool singleExit = loop.exiting.size() == 1 && tc.latch &&
                      loop.exiting[0] == tc.latch;
    bool finite = tc.kind != TripCount::Kind::Unknown && singleExit;

    // Collect exit target blocks (for StreamStop placement).
    std::vector<rtl::Block *> exitTargets;
    for (rtl::Block *b : loop.exiting)
        for (rtl::Block *s : b->succs)
            if (!loop.contains(s) &&
                    std::find(exitTargets.begin(), exitTargets.end(), s) ==
                        exitTargets.end()) {
                exitTargets.push_back(s);
            }

    // ---- Step 2: pick streamable references ----
    if (parts.unknownWriteExists()) {
        if (remarks)
            remarks->add(missed("unknown-memory-write"));
        return false;
    }

    auto everyIteration = [&](const MemRef &r) {
        for (rtl::Block *latch : loop.latches)
            if (!dt.dominates(r.block, latch))
                return false;
        return true;
    };

    // Use counts for single-use checking of load destinations.
    auto countUses = [&](const ExprPtr &reg, rtl::Block **useBlock,
                         size_t *useIndex) {
        int n = 0;
        for (auto &bp : fn.blocks()) {
            for (size_t i = 0; i < bp->insts.size(); ++i) {
                for (const auto &u : rtl::instUses(bp->insts[i])) {
                    if (u->isReg(reg->regFile(), reg->regIndex())) {
                        ++n;
                        *useBlock = bp.get();
                        *useIndex = i;
                    }
                }
            }
        }
        return n;
    };

    std::vector<PlannedStream> candidates;
    for (Partition &p : parts.parts) {
        if (!p.safe)
            continue;
        // Step 2a: no remaining memory recurrences (flow-dependent
        // read/write pairs) in the partition. Also reject overlapping
        // write/write pairs: two output streams would race on the
        // shared cells, with the final value decided by SCU timing.
        bool recurrenceLeft = false;
        const MemRef *recWrite = nullptr;
        for (const MemRef &w : p.refs) {
            if (!w.isWrite || w.cee == 0)
                continue;
            int64_t stride = w.cee * (w.iv ? w.iv->step : 0);
            if (stride == 0)
                continue;
            for (const MemRef &r : p.refs) {
                if (&r == &w)
                    continue;
                int64_t delta = w.roffset - r.roffset;
                if (!r.isWrite) {
                    if (delta == 0 ||
                            (delta % stride == 0 && delta / stride > 0)) {
                        recurrenceLeft = true;
                        recWrite = &w;
                    }
                } else if (delta % stride == 0) {
                    recurrenceLeft = true; // write-after-write overlap
                    recWrite = &w;
                }
            }
        }
        if (recurrenceLeft) {
            if (remarks)
                remarks->add(missed("memory-recurrence-remains",
                                    refPos(*recWrite))
                                 .arg("partition", p.key));
            continue;
        }
        // Writes cannot stream if an unanalyzed read might observe the
        // buffered values.
        for (const MemRef &ref : p.refs) {
            if (!ref.analyzable || !ref.iv || ref.cee == 0) {
                if (remarks)
                    remarks->add(missed("address-not-induction",
                                        refPos(ref))
                                     .arg("partition", p.key));
                continue;
            }
            if (ref.isWrite && parts.unknownReadExists()) {
                if (remarks)
                    remarks->add(missed("unknown-memory-read",
                                        refPos(ref))
                                     .arg("partition", p.key));
                continue;
            }
            // Step 2b/2c: stride and every-iteration execution.
            int64_t stride = ref.cee * ref.iv->step;
            if (stride == 0) {
                if (remarks)
                    remarks->add(missed("zero-stride", refPos(ref))
                                     .arg("partition", p.key));
                continue;
            }
            if (!everyIteration(ref)) {
                if (remarks)
                    remarks->add(missed("not-every-iteration",
                                        refPos(ref))
                                     .arg("partition", p.key)
                                     .arg("stride", stride));
                continue;
            }
            // Step 2d: executed loop_count times. With the bottom-test
            // shape every reference dominating the latch runs exactly
            // loop_count times; anything else is skipped.
            PlannedStream ps;
            ps.ref = ref;
            ps.side = rtl::isFloatType(ref.type) ? UnitSide::Flt
                                                 : UnitSide::Int;
            ps.stride = stride;
            const Inst &inst = ref.block->insts[ref.index];
            if (!ref.isWrite) {
                // Load: its destination must be virtual with a single
                // use executed once per iteration.
                if (!rtl::isVirtualFile(inst.dst->regFile())) {
                    if (remarks)
                        remarks->add(missed("load-register-not-virtual",
                                            refPos(ref)));
                    continue;
                }
                rtl::Block *ub = nullptr;
                size_t ui = 0;
                if (countUses(inst.dst, &ub, &ui) != 1) {
                    if (remarks)
                        remarks->add(missed("load-multiple-uses",
                                            refPos(ref)));
                    continue;
                }
                if (!loop.contains(ub)) {
                    if (remarks)
                        remarks->add(missed("use-outside-loop",
                                            refPos(ref)));
                    continue;
                }
                bool dominatesLatches = true;
                for (rtl::Block *latch : loop.latches)
                    if (!dt.dominates(ub, latch))
                        dominatesLatches = false;
                if (!dominatesLatches) {
                    if (remarks)
                        remarks->add(missed("not-every-iteration",
                                            refPos(ref))
                                         .arg("what", "use"));
                    continue;
                }
                // The use must not sit between other dequeues in a way
                // we cannot order; with one FIFO per stream this is
                // automatically consistent.
                ps.useBlock = ub;
                ps.useIndex = ui;
            } else {
                // Store: its value must be a register (enqueue source).
                if (!inst.src->isReg()) {
                    if (remarks)
                        remarks->add(missed("store-value-not-register",
                                            refPos(ref)));
                    continue;
                }
            }
            candidates.push_back(std::move(ps));
        }
    }
    if (candidates.empty()) {
        if (remarks)
            remarks->add(missed("no-streamable-references"));
        return false;
    }

    // ---- Step 2e: FIFO allocation ----
    // Scalar (non-streamed) loads and stores keep FIFO 0 of their side.
    auto isCandidate = [&](const rtl::Block *b, size_t idx) {
        for (const PlannedStream &ps : candidates)
            if (ps.ref.block == b && ps.ref.index == idx)
                return true;
        return false;
    };
    bool scalarLoad[2] = {false, false};
    bool scalarStore[2] = {false, false};
    for (rtl::Block *b : loop.blocks) {
        for (size_t i = 0; i < b->insts.size(); ++i) {
            const Inst &inst = b->insts[i];
            if (inst.kind == InstKind::Load && !isCandidate(b, i)) {
                scalarLoad[rtl::isFloatType(inst.memType) ? 1 : 0] = true;
            }
            if (inst.kind == InstKind::Store && !isCandidate(b, i)) {
                scalarStore[rtl::isFloatType(inst.memType) ? 1 : 0] = true;
            }
        }
    }

    std::vector<PlannedStream> chosen;
    int nextIn[2], limitIn[2], nextOut[2], limitOut[2];
    for (int s = 0; s < 2; ++s) {
        nextIn[s] = scalarLoad[s] ? 1 : 0;
        limitIn[s] = 2;
        nextOut[s] = scalarStore[s] ? 1 : 0;
        limitOut[s] = 2;
    }
    bool droppedLoad[2] = {false, false};
    bool droppedStore[2] = {false, false};
    auto noFifo = [&](const PlannedStream &ps) {
        if (remarks)
            remarks->add(
                missed("no-fifo-available", refPos(ps.ref))
                    .arg("side", ps.side == UnitSide::Flt ? "float" : "int")
                    .arg("direction", ps.ref.isWrite ? "out" : "in")
                    .arg("stride", ps.stride));
    };
    for (PlannedStream &ps : candidates) {
        int s = ps.side == UnitSide::Flt ? 1 : 0;
        if (!ps.ref.isWrite) {
            if (nextIn[s] >= limitIn[s]) {
                droppedLoad[s] = true;
                noFifo(ps);
                continue;
            }
            ps.fifo = nextIn[s]++;
        } else {
            if (nextOut[s] >= limitOut[s]) {
                droppedStore[s] = true;
                noFifo(ps);
                continue;
            }
            ps.fifo = nextOut[s]++;
        }
        chosen.push_back(ps);
    }
    // A dropped reference stays a scalar load/store and therefore needs
    // FIFO 0 of its side; if a stream already claimed it, give up on
    // the ones that stole it (conservative: drop streams on fifo 0 of
    // that side and class).
    for (int s = 0; s < 2; ++s) {
        auto evict = [&](bool writes) {
            for (auto it = chosen.begin(); it != chosen.end();) {
                if (it->ref.isWrite == writes && it->fifo == 0 &&
                        (it->side == UnitSide::Flt) == (s == 1)) {
                    noFifo(*it);
                    it = chosen.erase(it);
                } else {
                    ++it;
                }
            }
        };
        if (droppedLoad[s] && !scalarLoad[s])
            evict(false);
        if (droppedStore[s] && !scalarStore[s])
            evict(true);
    }
    if (chosen.empty())
        return false;

    // Past this point the rewrite always completes: record the applied
    // per-stream remarks now, while MemRef block/index pairs are still
    // valid (the rewrite below erases streamed loads).
    if (remarks) {
        for (const PlannedStream &ps : chosen) {
            obs::Remark r = missed("streamed", refPos(ps.ref));
            r.verdict = obs::RemarkVerdict::Applied;
            r.arg("side", ps.side == UnitSide::Flt ? "float" : "int")
                .arg("fifo", ps.fifo)
                .arg("stride", ps.stride)
                .arg("direction", ps.ref.isWrite ? "out" : "in");
            if (tc.kind == TripCount::Kind::Const)
                r.arg("trip_count", tc.constVal);
            remarks->add(std::move(r));
        }
    }

    // ---- Steps f/g: preheader code ----
    rtl::Block *pre = cfg::ensurePreheader(fn, loop);

    ExprPtr countReg;
    if (finite) {
        // count := sign * (bound - iv) + addend.
        ExprPtr boundVal = materializeBase(fn, pre, tc.bound, 0);
        ExprPtr t = fn.newVReg(DataType::I64);
        ExprPtr diff =
            tc.sign > 0
                ? rtl::makeBin(Op::Sub, boundVal, tc.iv->reg)
                : rtl::makeBin(Op::Sub, tc.iv->reg, boundVal);
        if (tc.addend)
            diff = rtl::makeBin(Op::Add, diff, rtl::makeConst(tc.addend));
        size_t at = pre->insts.size();
        if (pre->terminator())
            --at;
        pre->insts.insert(pre->insts.begin() + static_cast<ptrdiff_t>(at),
                          rtl::makeAssign(t, diff,
                                          "number of items to stream"));
        countReg = t;
    }

    // Sort: stream-ins before stream-outs (paper Figure 7 order).
    std::stable_sort(chosen.begin(), chosen.end(),
                     [](const PlannedStream &a, const PlannedStream &b) {
                         return !a.ref.isWrite && b.ref.isWrite;
                     });

    for (const PlannedStream &ps : chosen) {
        // Base address of the first element: cee*iv0 + dee. The IV
        // still holds its initial value in the preheader, so
        // materialize base+roffset and add the scaled IV when the
        // initial value is not statically zero.
        ExprPtr base = materializeBase(fn, pre, ps.ref.dee, 0);
        // Add cee*iv0.
        {
            size_t at = pre->insts.size();
            if (pre->terminator())
                --at;
            auto insert = [&](Inst inst) {
                pre->insts.insert(pre->insts.begin() +
                                  static_cast<ptrdiff_t>(at++),
                                  std::move(inst));
            };
            ExprPtr scaled;
            if (ps.ref.cee == 1) {
                scaled = ps.ref.iv->reg;
            } else {
                int sh = -1;
                for (int k = 1; k < 32; ++k)
                    if (ps.ref.cee == (int64_t{1} << k))
                        sh = k;
                ExprPtr t2 = fn.newVReg(DataType::I64);
                insert(rtl::makeAssign(
                    t2, sh > 0 ? rtl::makeBin(Op::Shl, ps.ref.iv->reg,
                                              rtl::makeConst(sh))
                               : rtl::makeBin(Op::Mul, ps.ref.iv->reg,
                                              rtl::makeConst(ps.ref.cee)),
                    "scale initial index"));
                scaled = t2;
            }
            ExprPtr t3 = fn.newVReg(DataType::I64);
            insert(rtl::makeAssign(t3, rtl::makeBin(Op::Add, scaled, base),
                                   "first element address"));
            base = t3;

            // Hidden fault injection (--inject-deadlock-bug): give
            // every input stream except the loop-steering one
            // (chosen.front(), whose count feeds the JNI mirror) one
            // element too few. The loop still runs the full trip
            // count, so the consumer's final dequeue waits on a FIFO
            // no producer will ever fill — the FIFO-imbalance
            // miscompile the watchdog self-test must detect.
            ExprPtr cnt = countReg;
            if (injectCountBug && finite && !ps.ref.isWrite &&
                    &ps != &chosen.front()) {
                ExprPtr t4 = fn.newVReg(DataType::I64);
                insert(rtl::makeAssign(
                    t4,
                    rtl::makeBin(Op::Sub, countReg, rtl::makeConst(1)),
                    "injected stream under-count"));
                cnt = t4;
            }
            Inst stream =
                ps.ref.isWrite
                    ? rtl::makeStreamOut(ps.side, ps.fifo, base, cnt,
                                         ps.stride, ps.ref.type,
                                         "stream out")
                    : rtl::makeStreamIn(ps.side, ps.fifo, base, cnt,
                                        ps.stride, ps.ref.type,
                                        "stream in");
            if (!finite)
                stream.count = nullptr;
            // Stream setup lives in the preheader but belongs to the
            // loop: carry the reference's provenance and loop id so
            // per-loop attribution charges it to the right loop.
            stream.pos = refPos(ps.ref);
            stream.loopId = loopId;
            insert(std::move(stream));
        }
    }

    // ---- Step h: rewrite loads and stores ----
    // Group rewrites per block, descending index, so erases stay valid.
    std::vector<const PlannedStream *> order;
    for (const PlannedStream &ps : chosen)
        order.push_back(&ps);
    // Order blocks by label, not by pointer: heap addresses vary
    // with the process's allocation history, and the rewrite order
    // names fresh registers — pointer order made two compiles of the
    // same source in one process produce differently-numbered (if
    // semantically identical) code, breaking batch-vs-solo
    // bit-identity.
    std::sort(order.begin(), order.end(),
              [](const PlannedStream *a, const PlannedStream *b) {
                  if (a->ref.block != b->ref.block)
                      return a->ref.block->label() <
                             b->ref.block->label();
                  return a->ref.index > b->ref.index;
              });
    for (const PlannedStream *ps : order) {
        Inst &inst = ps->ref.block->insts[ps->ref.index];
        bool flt = ps->side == UnitSide::Flt;
        if (!ps->ref.isWrite) {
            WS_ASSERT(inst.kind == InstKind::Load, "stale stream index");
            ExprPtr dst = inst.dst;
            // Re-locate the single use now (earlier rewrites may have
            // shifted the indexes captured during planning), replace it
            // with the FIFO register, and delete the load.
            ExprPtr f = fifoReg(ps->side, ps->fifo, flt);
            // Verifier self-test: one non-steering input stream's use
            // reads the zero register instead, so its dequeue silently
            // disappears — the producer still enqueues `count`
            // elements nobody pops. The static FIFO-balance linter
            // must flag this at compile time (fifo-pop-imbalance).
            if (injectPopBug && ps != &chosen.front()) {
                f = rtl::makeReg(flt ? rtl::RegFile::Flt
                                     : rtl::RegFile::Int,
                                 traits.zeroReg,
                                 flt ? DataType::F64 : DataType::I64);
                injectPopBug = false; // one stream is enough
            }
            bool replaced = false;
            for (auto &bp : fn.blocks()) {
                for (Inst &use : bp->insts) {
                    if (&use == &inst)
                        continue;
                    auto replace = [&](ExprPtr &field) {
                        if (field && rtl::usesReg(field, dst->regFile(),
                                                  dst->regIndex())) {
                            field = rtl::substReg(field, dst->regFile(),
                                                  dst->regIndex(), f);
                            replaced = true;
                        }
                    };
                    replace(use.src);
                    replace(use.addr);
                    replace(use.count);
                }
            }
            WS_ASSERT(replaced, "streamed load use vanished");
            ps->ref.block->insts.erase(
                ps->ref.block->insts.begin() +
                static_cast<ptrdiff_t>(ps->ref.index));
            ++report.streamsIn;
        } else {
            WS_ASSERT(inst.kind == InstKind::Store, "stale stream index");
            Inst enq = rtl::makeAssign(fifoReg(ps->side, ps->fifo, flt),
                                       inst.src, "enqueue stream value");
            enq.id = inst.id;
            inst = std::move(enq);
            ++report.streamsOut;
        }
        if (!finite)
            ++report.infiniteStreams;
    }

    // ---- Step i: loop test replacement or stream stops ----
    if (finite) {
        // Replace compare+branch in the latch with jump-on-stream.
        const PlannedStream &probe = chosen.front();
        Inst js = rtl::makeJumpStream(probe.side, probe.fifo,
                                      loop.header->label(),
                                      "jump if stream count not zero");
        rtl::Block *latch = tc.latch;
        // Recompute positions: the latch shrank if loads were deleted.
        size_t jmpIdx = latch->insts.size() - 1;
        WS_ASSERT(latch->insts[jmpIdx].kind == InstKind::CondJump,
                  "latch terminator changed");
        size_t cmpIdx = jmpIdx;
        for (size_t i = jmpIdx; i-- > 0;) {
            const Inst &inst = latch->insts[i];
            if (inst.kind == InstKind::Assign &&
                    inst.dst->regFile() == rtl::RegFile::CC) {
                cmpIdx = i;
                break;
            }
        }
        WS_ASSERT(cmpIdx < jmpIdx, "loop compare not found");
        latch->insts[jmpIdx] = std::move(js);
        latch->insts.erase(latch->insts.begin() +
                           static_cast<ptrdiff_t>(cmpIdx));
        ++report.loopTestsReplaced;

        // ---- Step j: delete the induction variable increment if the
        // IV is dead.
        const BasicIV *iv = tc.iv;
        int loopUses = 0;
        for (rtl::Block *b : loop.blocks)
            for (size_t i = 0; i < b->insts.size(); ++i)
                for (const auto &u : rtl::instUses(b->insts[i]))
                    if (u->isReg(iv->reg->regFile(), iv->reg->regIndex()))
                        ++loopUses;
        // The increment itself uses the IV once.
        if (loopUses == 1) {
            fn.recomputeCfg();
            cfg::Liveness lv(fn, traits);
            bool liveOut = false;
            for (rtl::Block *ex : exitTargets)
                if (lv.liveIn(ex).count(RegKey{iv->reg->regFile(),
                                               iv->reg->regIndex()})) {
                    liveOut = true;
                }
            if (!liveOut) {
                for (size_t i = 0; i < iv->defBlock->insts.size(); ++i) {
                    const Inst &inst = iv->defBlock->insts[i];
                    if (inst.kind == InstKind::Assign && inst.dst &&
                            inst.dst->isReg(iv->reg->regFile(),
                                            iv->reg->regIndex())) {
                        iv->defBlock->insts.erase(
                            iv->defBlock->insts.begin() +
                            static_cast<ptrdiff_t>(i));
                        ++report.inductionVarsDeleted;
                        break;
                    }
                }
            }
        }
    } else {
        // Infinite streams: stop them at every loop exit.
        for (rtl::Block *ex : exitTargets) {
            std::vector<Inst> stops;
            for (const PlannedStream &ps : chosen) {
                Inst stop = rtl::makeStreamStop(
                    ps.side, ps.fifo, "stop stream at loop exit");
                // `when` carries the direction: true = input stream.
                stop.when = !ps.ref.isWrite;
                stops.push_back(std::move(stop));
            }
            ex->insts.insert(ex->insts.begin(), stops.begin(),
                             stops.end());
        }
    }

    ++report.loopsStreamed;
    if (remarks) {
        obs::Remark r = missed("loop-streamed");
        r.verdict = obs::RemarkVerdict::Applied;
        int nin = 0, nout = 0;
        for (const PlannedStream &ps : chosen)
            (ps.ref.isWrite ? nout : nin)++;
        r.arg("streams_in", nin).arg("streams_out", nout);
        if (tc.kind == TripCount::Kind::Const)
            r.arg("trip_count", tc.constVal);
        r.arg("finite", finite ? "true" : "false");
        remarks->add(std::move(r));
    }
    fn.recomputeCfg();
    return true;
}

} // anonymous namespace

StreamingReport
runStreaming(rtl::Function &fn, const rtl::MachineTraits &traits,
             int minTripCount, obs::RemarkCollector *remarks,
             bool injectStreamCountBug, bool injectVerifierBug)
{
    StreamingReport report;
    if (!traits.hasStreams)
        return report;

    std::vector<std::string> doneLoops;
    for (int round = 0; round < 64; ++round) {
        fn.recomputeCfg();
        cfg::DominatorTree dt(fn);
        cfg::LoopInfo li(fn, dt);
        bool changed = false;
        for (cfg::Loop &loop : li.loops()) {
            bool innermost = true;
            for (cfg::Loop &other : li.loops())
                if (&other != &loop && loop.contains(other))
                    innermost = false;
            if (!innermost)
                continue;
            if (std::find(doneLoops.begin(), doneLoops.end(),
                          loop.header->label()) != doneLoops.end()) {
                continue;
            }
            doneLoops.push_back(loop.header->label());
            ++report.loopsExamined;
            if (streamLoop(fn, loop, dt, traits, minTripCount, report,
                           remarks, injectStreamCountBug,
                           injectVerifierBug)) {
                changed = true;
                break; // structures stale
            }
        }
        if (!changed)
            break;
    }
    fn.recomputeCfg();
    fn.renumber();
    return report;
}

} // namespace wmstream::streaming
