/**
 * @file
 * The streaming optimization (paper, "Streaming Optimization
 * Algorithm").
 *
 * After recurrences have been optimized, every safe memory reference
 * that executes on each iteration of a loop is turned into a hardware
 * stream: a SinX/SoutX instruction in the preheader directs a stream
 * control unit to move the whole sequence between memory and a data
 * FIFO, the loads/stores inside the loop become FIFO register
 * references, and (when the trip count is a computable expression) the
 * loop test is replaced by a jump-on-stream-not-exhausted. When the
 * trip count is unknown (a data-dependent while loop), streams are
 * started unbounded and StreamStop instructions are placed at every
 * loop exit — the paper's "infinite streams".
 */

#ifndef WMSTREAM_STREAMING_STREAMING_H
#define WMSTREAM_STREAMING_STREAMING_H

#include <string>
#include <vector>

#include "obs/remarks.h"
#include "rtl/machine.h"
#include "rtl/program.h"

namespace wmstream::streaming {

/** Result summary for tests and the experiment harnesses. */
struct StreamingReport
{
    int loopsExamined = 0;
    int loopsStreamed = 0;
    int streamsIn = 0;
    int streamsOut = 0;
    int infiniteStreams = 0;
    int loopTestsReplaced = 0;
    int inductionVarsDeleted = 0;
    std::vector<std::string> notes;
};

/**
 * Run the streaming optimization over all innermost loops of @p fn.
 * Only meaningful when @p traits.hasStreams; returns an empty report
 * otherwise. @p minTripCount implements the paper's Step 1: loops with
 * a known trip count of three or fewer are not streamed.
 *
 * When @p remarks is given, every accept/reject decision is recorded:
 * an `applied` remark per created stream and per streamed loop, and a
 * `missed` remark with a stable reason code (`trip-count-too-small`,
 * `memory-recurrence-remains`, `not-every-iteration`,
 * `no-fifo-available`, ...) for each rejection, located at the source
 * position of the loop or memory reference that caused it.
 */
/**
 * @p injectStreamCountBug is the deadlock watchdog's hidden self-test
 * (wmfuzz/wmc --inject-deadlock-bug): every input stream except the
 * loop-steering one is started one element short, a deliberate
 * FIFO-imbalance miscompile. Nothing but the fault-injection harness
 * may set it.
 *
 * @p injectVerifierBug is the IR verifier's hidden self-test
 * (wmfuzz/wmc --inject-verifier-bug): the single use of one
 * non-steering input stream reads the zero register instead of the
 * FIFO register, so one dequeue silently disappears from the loop
 * body — a FIFO-pop-imbalance miscompile the static linter must
 * catch at compile time. Nothing but the fault-injection harness may
 * set it.
 */
StreamingReport runStreaming(rtl::Function &fn,
                             const rtl::MachineTraits &traits,
                             int minTripCount = 4,
                             obs::RemarkCollector *remarks = nullptr,
                             bool injectStreamCountBug = false,
                             bool injectVerifierBug = false);

} // namespace wmstream::streaming

#endif // WMSTREAM_STREAMING_STREAMING_H
