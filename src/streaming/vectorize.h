/**
 * @file
 * Vectorization onto the WM vector execution unit (VEU).
 *
 * The paper: "The architecture also supports vector operations ...
 * conceptually the iterations of the loop are performed simultaneously
 * by the vector execution unit", "a single instruction can cause a
 * stream of data to be read/written from/to either the IEU FIFOs, the
 * FEU FIFOs, or the VEU", and "when vector code is possible, the
 * compiler generates code that uses the vector unit".
 *
 * This pass runs after streaming: a loop whose entire body collapsed
 * to one element-wise FIFO operation (dst out-FIFO := src in-FIFO op
 * operand) with a known element count is replaced by a single VecOp
 * instruction — the loop disappears and the VEU processes the streams
 * at its lane rate. Loops with recurrences are exactly the ones the
 * paper says cannot be vectorized, and they fail the pattern here
 * (their body reads a register carried across iterations).
 */

#ifndef WMSTREAM_STREAMING_VECTORIZE_H
#define WMSTREAM_STREAMING_VECTORIZE_H

#include "rtl/machine.h"
#include "rtl/program.h"

namespace wmstream::streaming {

/** Summary of the vectorization pass. */
struct VectorizeReport
{
    int loopsVectorized = 0;
};

/**
 * Replace fully-streamed element-wise loops of @p fn with VecOp
 * instructions. Run after runStreaming; WM only.
 */
VectorizeReport runVectorize(rtl::Function &fn,
                             const rtl::MachineTraits &traits);

} // namespace wmstream::streaming

#endif // WMSTREAM_STREAMING_VECTORIZE_H
