/**
 * @file
 * The code expander: AST to naive target RTL.
 *
 * Following the paper's compiler structure, the expander produces
 * "naive but correct" code: one RTL per source-level operator, all
 * scalar values in virtual registers, every load/store explicit.
 * "All code generation and optimization decisions are delayed until the
 * target architecture information is available" — the expander is
 * parameterized by MachineTraits and the later combine phase merges
 * RTLs into the target's instruction shapes (dual-operation
 * instructions on WM).
 *
 * Loop statements expand in the guarded, bottom-test form the paper's
 * Figure 4 shows: a guard compare-and-branch around the loop and a
 * compare-and-branch back edge at the bottom, which yields single-block
 * bodies for simple loops.
 */

#ifndef WMSTREAM_EXPAND_EXPANDER_H
#define WMSTREAM_EXPAND_EXPANDER_H

#include <unordered_map>
#include <vector>

#include "frontend/ast.h"
#include "obs/remarks.h"
#include "rtl/machine.h"
#include "rtl/program.h"

namespace wmstream::expand {

/**
 * Expand @p unit into @p out for the given target.
 *
 * Adds one rtl::Function per defined function, one GlobalVar per global
 * and string-pool entry (with initial bytes), and constant-pool entries
 * for floating literals. Call after Sema succeeded.
 *
 * Every emitted instruction is stamped with the source position of the
 * statement/expression it came from (Inst::pos). When @p remarks is
 * given, each source loop is registered in its loop-id registry (keyed
 * by function + header label) in source order, so optimization remarks
 * and per-loop cycle attribution share ids numbered the way a reader
 * of the source would number the loops.
 */
void expandUnit(const frontend::TranslationUnit &unit,
                const rtl::MachineTraits &traits, rtl::Program &out,
                obs::RemarkCollector *remarks = nullptr);

} // namespace wmstream::expand

#endif // WMSTREAM_EXPAND_EXPANDER_H
