#include "expand/expander.h"

#include <cstring>
#include <unordered_map>

#include "interp/interp.h"
#include "support/str.h"

namespace wmstream::expand {

using namespace frontend;
using rtl::DataType;
using rtl::ExprPtr;
using rtl::Inst;
using rtl::InstKind;
using rtl::Op;
using rtl::RegFile;
using rtl::UnitSide;
using rtl::isFloatType;
using rtl::makeConst;
using rtl::makeReg;
using rtl::makeSym;

namespace {

/** RTL data type of a mini-C type. */
DataType
dataTypeOf(const TypePtr &t)
{
    if (t->isChar())
        return DataType::I8;
    if (t->isDouble())
        return DataType::F64;
    return DataType::I64; // int and pointers
}

/** log2 of a power-of-two size, or -1. */
int
log2Exact(int64_t v)
{
    for (int i = 0; i < 62; ++i)
        if (v == (int64_t{1} << i))
            return i;
    return -1;
}

bool
isRelationalBin(BinOp op)
{
    switch (op) {
      case BinOp::Eq: case BinOp::Ne: case BinOp::Lt:
      case BinOp::Le: case BinOp::Gt: case BinOp::Ge:
        return true;
      default:
        return false;
    }
}

class Expander
{
  public:
    Expander(const TranslationUnit &unit, const rtl::MachineTraits &traits,
             rtl::Program &out, obs::RemarkCollector *remarks)
        : unit_(unit), traits_(traits), out_(out), remarks_(remarks)
    {
    }

    void run();

  private:
    // ---- program-level helpers ----
    void emitGlobals();
    std::vector<uint8_t> initBytes(const VarDecl &v);
    std::string floatPoolSymbol(double value);

    // ---- function-level state ----
    rtl::Function *fn_ = nullptr;
    rtl::Block *cur_ = nullptr;
    std::unordered_map<const Decl *, ExprPtr> regVars_;
    std::unordered_map<const Decl *, int64_t> slots_;
    std::vector<std::string> breakLabels_;
    std::vector<std::string> continueLabels_;

    void expandFunction(const FuncDecl &fd);

    // ---- emission helpers ----
    void emit(Inst inst)
    {
        if (!inst.pos.valid())
            inst.pos = curPos_;
        cur_->insts.push_back(std::move(inst));
    }
    /** Start a new block (targets of branches need stable labels). */
    rtl::Block *startBlock(const std::string &label = "")
    {
        cur_ = fn_->addBlock(label);
        return cur_;
    }

    ExprPtr zeroOf(DataType t)
    {
        if (isFloatType(t))
            return makeReg(RegFile::Flt, traits_.zeroReg, DataType::F64);
        return makeConst(0, DataType::I64);
    }

    /** Materialize @p e into a fresh virtual register. */
    ExprPtr toReg(ExprPtr e, DataType t)
    {
        if (e->isReg())
            return e;
        ExprPtr r = fn_->newVReg(t);
        emit(rtl::makeAssign(r, std::move(e)));
        return r;
    }

    /** Emit r := a op b into a fresh vreg of type @p t. */
    ExprPtr emitBin(Op op, ExprPtr a, ExprPtr b, DataType t)
    {
        ExprPtr folded = rtl::makeBin(op, std::move(a), std::move(b));
        if (folded->isConst() || folded->isSym())
            return folded; // constant folding at expansion time
        ExprPtr r = fn_->newVReg(t);
        emit(rtl::makeAssign(r, folded));
        return r;
    }

    ExprPtr ccReg(UnitSide side)
    {
        return makeReg(RegFile::CC, side == UnitSide::Int ? 0 : 1,
                       DataType::I64);
    }

    // ---- lvalues ----
    struct LVal
    {
        ExprPtr reg;    ///< register-resident variable (else null)
        ExprPtr addr;   ///< address leaf for memory-resident lvalues
        DataType dt = DataType::I64;
        TypePtr type;
    };

    LVal lvalue(const Expr &e);
    ExprPtr loadLVal(const LVal &lv);
    void storeLVal(const LVal &lv, ExprPtr val);

    /** Address of an array-typed expression (no load). */
    ExprPtr arrayAddress(const Expr &e);

    // ---- expressions ----
    ExprPtr evalExpr(const Expr &e);
    ExprPtr evalScaledIndex(ExprPtr idx, int64_t elemSize);
    ExprPtr convert(ExprPtr v, const TypePtr &from, const TypePtr &to);
    void emitCondJump(const Expr &e, const std::string &target,
                      bool jumpWhenTrue);

    // ---- statements ----
    void expandStmt(const Stmt &s);

    const TranslationUnit &unit_;
    const rtl::MachineTraits traits_;
    rtl::Program &out_;
    obs::RemarkCollector *remarks_;
    std::unordered_map<uint64_t, std::string> floatPool_;
    int nextFloat_ = 0;
    /** Position of the construct being expanded; emit() stamps it. */
    SourcePos curPos_;
};

void
Expander::run()
{
    emitGlobals();
    for (const auto &fd : unit_.functions)
        if (fd->body)
            expandFunction(*fd);
}

std::vector<uint8_t>
Expander::initBytes(const VarDecl &v)
{
    std::vector<uint8_t> bytes(v.type->size(), 0);
    auto putScalar = [&](int64_t at, const TypePtr &ty,
                         interp::Value val) {
        if (ty->isChar()) {
            bytes[at] = static_cast<uint8_t>(val.i);
        } else if (ty->isDouble()) {
            double d = val.isFloat ? val.f : static_cast<double>(val.i);
            std::memcpy(&bytes[at], &d, 8);
        } else {
            int64_t i = val.isFloat ? static_cast<int64_t>(val.f) : val.i;
            std::memcpy(&bytes[at], &i, 8);
        }
    };
    if (v.init.empty())
        return bytes;
    if (v.init.isString) {
        std::memcpy(bytes.data(), v.init.stringInit.data(),
                    v.init.stringInit.size());
        return bytes;
    }
    if (!v.init.list.empty()) {
        int64_t esz = v.type->base()->size();
        for (size_t i = 0; i < v.init.list.size(); ++i)
            putScalar(static_cast<int64_t>(i) * esz, v.type->base(),
                      interp::evalConstExpr(*v.init.list[i]));
        return bytes;
    }
    putScalar(0, v.type, interp::evalConstExpr(*v.init.scalar));
    return bytes;
}

void
Expander::emitGlobals()
{
    for (const auto &[name, data] : unit_.stringPool) {
        auto &g = out_.addGlobal(name, static_cast<int64_t>(data.size()), 1);
        g.init.assign(data.begin(), data.end());
    }
    for (const auto &v : unit_.globals) {
        auto &g = out_.addGlobal(v->name, v->type->size(),
                                 v->type->align());
        g.init = initBytes(*v);
        g.mayBeAliased = v->addressTaken || v->type->isArray();
    }
}

std::string
Expander::floatPoolSymbol(double value)
{
    uint64_t bits;
    std::memcpy(&bits, &value, 8);
    auto it = floatPool_.find(bits);
    if (it != floatPool_.end())
        return it->second;
    std::string name = strFormat("__fc%d", nextFloat_++);
    auto &g = out_.addGlobal(name, 8, 8);
    g.init.resize(8);
    std::memcpy(g.init.data(), &value, 8);
    g.mayBeAliased = false;
    g.readOnly = true;
    floatPool_[bits] = name;
    return name;
}

void
Expander::expandFunction(const FuncDecl &fd)
{
    fn_ = out_.addFunction(fd.name);
    regVars_.clear();
    slots_.clear();
    curPos_ = fd.pos();
    cur_ = fn_->addBlock(fd.name + "_entry");

    // Parameters arrive in the argument registers; copy them out
    // immediately so register assignment owns their lifetime.
    int intArg = 0, fltArg = 0;
    for (const auto &p : fd.params) {
        DataType dt = dataTypeOf(p->type);
        bool isF = isFloatType(dt);
        int idx = traits_.firstArgReg + (isF ? fltArg++ : intArg++);
        WS_ASSERT(idx < traits_.firstArgReg + traits_.numArgRegs,
                  "too many arguments in " + fd.name);
        ExprPtr arg = makeReg(isF ? RegFile::Flt : RegFile::Int, idx,
                              isF ? DataType::F64 : DataType::I64);
        if (p->addressTaken) {
            int64_t off = fn_->allocFrameSlot(8, 8);
            slots_[p.get()] = off;
            ExprPtr sp =
                makeReg(RegFile::Int, traits_.spReg, DataType::I64);
            ExprPtr a = emitBin(Op::Add, sp, makeConst(off), DataType::I64);
            emit(rtl::makeStore(a, arg, dt, "spill param " + p->name));
        } else {
            ExprPtr v = fn_->newVReg(isF ? DataType::F64 : DataType::I64);
            emit(rtl::makeAssign(v, arg, "param " + p->name));
            regVars_[p.get()] = v;
        }
    }

    expandStmt(*fd.body);

    // Implicit return for void functions / main fallthrough.
    if (!cur_->terminator()) {
        if (!fd.returnType()->isVoid()) {
            ExprPtr ret =
                makeReg(RegFile::Int, traits_.retReg, DataType::I64);
            emit(rtl::makeAssign(ret, makeConst(0)));
            Inst r = rtl::makeReturn();
            r.extraUses.push_back(ret);
            emit(std::move(r));
        } else {
            emit(rtl::makeReturn());
        }
    }

    fn_->recomputeCfg();
    fn_->removeUnreachable();
    fn_->renumber();
}

Expander::LVal
Expander::lvalue(const Expr &e)
{
    switch (e.kind()) {
      case NodeKind::Ident: {
        const auto &id = static_cast<const IdentExpr &>(e);
        const Decl *d = id.decl;
        LVal lv;
        lv.type = d->type;
        lv.dt = dataTypeOf(d->type);
        if (auto it = regVars_.find(d); it != regVars_.end()) {
            lv.reg = it->second;
            return lv;
        }
        if (auto it = slots_.find(d); it != slots_.end()) {
            ExprPtr sp =
                makeReg(RegFile::Int, traits_.spReg, DataType::I64);
            lv.addr = emitBin(Op::Add, sp, makeConst(it->second),
                              DataType::I64);
            return lv;
        }
        // Global.
        lv.addr = makeSym(d->name);
        return lv;
      }
      case NodeKind::Index: {
        const auto &ix = static_cast<const IndexExpr &>(e);
        ExprPtr base;
        if (ix.base->type->isArray())
            base = arrayAddress(*ix.base);
        else
            base = evalExpr(*ix.base); // pointer value
        ExprPtr idx = evalExpr(*ix.index);
        LVal lv;
        lv.type = e.type;
        lv.dt = dataTypeOf(e.type);
        int64_t esz = e.type->size();
        ExprPtr off = evalScaledIndex(idx, esz);
        lv.addr = emitBin(Op::Add, off, base, DataType::I64);
        return lv;
      }
      case NodeKind::Unary: {
        const auto &u = static_cast<const UnaryExpr &>(e);
        WS_ASSERT(u.op == UnOp::Deref, "bad lvalue unary");
        LVal lv;
        lv.type = e.type;
        lv.dt = dataTypeOf(e.type);
        lv.addr = evalExpr(*u.operand);
        return lv;
      }
      default:
        WS_PANIC("expression is not an lvalue");
    }
}

ExprPtr
Expander::loadLVal(const LVal &lv)
{
    if (lv.reg)
        return lv.reg;
    ExprPtr dst = fn_->newVReg(isFloatType(lv.dt) ? DataType::F64
                                                  : DataType::I64);
    emit(rtl::makeLoad(dst, lv.addr, lv.dt));
    return dst;
}

void
Expander::storeLVal(const LVal &lv, ExprPtr val)
{
    if (lv.reg) {
        if (lv.type->isChar())
            val = rtl::makeBin(Op::And, std::move(val), makeConst(255));
        emit(rtl::makeAssign(lv.reg, std::move(val)));
        return;
    }
    if (!val->isReg()) {
        // Zero can be stored straight from the hardwired zero register.
        if (val->isIntConst(0) && !isFloatType(lv.dt))
            val = makeReg(RegFile::Int, traits_.zeroReg, DataType::I64);
        else
            val = toReg(std::move(val), isFloatType(lv.dt) ? DataType::F64
                                                           : DataType::I64);
    }
    emit(rtl::makeStore(lv.addr, std::move(val), lv.dt));
}

ExprPtr
Expander::arrayAddress(const Expr &e)
{
    switch (e.kind()) {
      case NodeKind::Ident: {
        const auto &id = static_cast<const IdentExpr &>(e);
        const Decl *d = id.decl;
        if (auto it = slots_.find(d); it != slots_.end()) {
            ExprPtr sp =
                makeReg(RegFile::Int, traits_.spReg, DataType::I64);
            return emitBin(Op::Add, sp, makeConst(it->second),
                           DataType::I64);
        }
        return makeSym(d->name);
      }
      case NodeKind::Index: {
        // Row of a multi-dimensional array: compute the row address.
        const auto &ix = static_cast<const IndexExpr &>(e);
        ExprPtr base = ix.base->type->isArray() ? arrayAddress(*ix.base)
                                                : evalExpr(*ix.base);
        ExprPtr idx = evalExpr(*ix.index);
        ExprPtr off = evalScaledIndex(idx, e.type->size());
        return emitBin(Op::Add, off, base, DataType::I64);
      }
      case NodeKind::Cast:
        return arrayAddress(*static_cast<const CastExpr &>(e).operand);
      default:
        WS_PANIC("arrayAddress: unexpected node");
    }
}

ExprPtr
Expander::evalScaledIndex(ExprPtr idx, int64_t elemSize)
{
    if (elemSize == 1)
        return idx;
    int shift = log2Exact(elemSize);
    if (shift >= 0)
        return emitBin(Op::Shl, std::move(idx), makeConst(shift),
                       DataType::I64);
    return emitBin(Op::Mul, std::move(idx), makeConst(elemSize),
                   DataType::I64);
}

ExprPtr
Expander::convert(ExprPtr v, const TypePtr &from, const TypePtr &to)
{
    bool ff = from->isDouble();
    bool tf = to->isDouble();
    if (ff == tf) {
        if (to->isChar() && !from->isChar())
            return emitBin(Op::And, std::move(v), makeConst(255),
                           DataType::I64);
        return v;
    }
    ExprPtr r = fn_->newVReg(tf ? DataType::F64 : DataType::I64);
    emit(rtl::makeAssign(
        r, rtl::makeUn(tf ? Op::CvtIF : Op::CvtFI, toReg(std::move(v),
                       ff ? DataType::F64 : DataType::I64),
                       tf ? DataType::F64 : DataType::I64)));
    return r;
}

void
Expander::emitCondJump(const Expr &e, const std::string &target,
                       bool jumpWhenTrue)
{
    // Short-circuit forms decompose into control flow.
    if (e.kind() == NodeKind::Binary) {
        const auto &b = static_cast<const BinaryExpr &>(e);
        if (b.op == BinOp::LogAnd) {
            if (jumpWhenTrue) {
                std::string skip = fn_->newLabel();
                emitCondJump(*b.lhs, skip, false);
                startBlock();
                emitCondJump(*b.rhs, target, true);
                startBlock(skip);
            } else {
                emitCondJump(*b.lhs, target, false);
                startBlock();
                emitCondJump(*b.rhs, target, false);
                startBlock();
            }
            return;
        }
        if (b.op == BinOp::LogOr) {
            if (jumpWhenTrue) {
                emitCondJump(*b.lhs, target, true);
                startBlock();
                emitCondJump(*b.rhs, target, true);
                startBlock();
            } else {
                std::string skip = fn_->newLabel();
                emitCondJump(*b.lhs, skip, true);
                startBlock();
                emitCondJump(*b.rhs, target, false);
                startBlock(skip);
            }
            return;
        }
        // Direct relational compare.
        Op rel = Op::Eq;
        bool isRel = true;
        switch (b.op) {
          case BinOp::Eq: rel = Op::Eq; break;
          case BinOp::Ne: rel = Op::Ne; break;
          case BinOp::Lt: rel = Op::Lt; break;
          case BinOp::Le: rel = Op::Le; break;
          case BinOp::Gt: rel = Op::Gt; break;
          case BinOp::Ge: rel = Op::Ge; break;
          default: isRel = false; break;
        }
        if (isRel) {
            ExprPtr l = evalExpr(*b.lhs);
            ExprPtr r = evalExpr(*b.rhs);
            bool flt = b.lhs->type->isDouble() || b.rhs->type->isDouble();
            UnitSide side = flt ? UnitSide::Flt : UnitSide::Int;
            emit(rtl::makeAssign(ccReg(side), rtl::makeBin(rel, l, r)));
            emit(rtl::makeCondJump(side, jumpWhenTrue, target));
            startBlock();
            return;
        }
    }
    if (e.kind() == NodeKind::Unary) {
        const auto &u = static_cast<const UnaryExpr &>(e);
        if (u.op == UnOp::LogNot) {
            emitCondJump(*u.operand, target, !jumpWhenTrue);
            return;
        }
    }
    // Generic: value != 0.
    ExprPtr v = evalExpr(e);
    bool flt = e.type->isDouble();
    UnitSide side = flt ? UnitSide::Flt : UnitSide::Int;
    emit(rtl::makeAssign(ccReg(side),
                         rtl::makeBin(Op::Ne, toReg(v, flt ? DataType::F64
                                                           : DataType::I64),
                                      zeroOf(flt ? DataType::F64
                                                 : DataType::I64))));
    emit(rtl::makeCondJump(side, jumpWhenTrue, target));
    startBlock();
}

ExprPtr
Expander::evalExpr(const Expr &e)
{
    if (e.pos().valid())
        curPos_ = e.pos();
    switch (e.kind()) {
      case NodeKind::IntLit:
        return makeConst(static_cast<const IntLitExpr &>(e).value,
                         DataType::I64);
      case NodeKind::FloatLit: {
        double v = static_cast<const FloatLitExpr &>(e).value;
        if (v == 0.0)
            return makeReg(RegFile::Flt, traits_.zeroReg, DataType::F64);
        ExprPtr dst = fn_->newVReg(DataType::F64);
        emit(rtl::makeLoad(dst, makeSym(floatPoolSymbol(v)),
                           DataType::F64));
        return dst;
      }
      case NodeKind::StrLit:
        return makeSym(static_cast<const StrLitExpr &>(e).poolName);
      case NodeKind::Ident: {
        const auto &id = static_cast<const IdentExpr &>(e);
        if (id.type->isArray())
            return arrayAddress(e);
        LVal lv = lvalue(e);
        return loadLVal(lv);
      }
      case NodeKind::Cast: {
        const auto &c = static_cast<const CastExpr &>(e);
        if (c.operand->type && c.operand->type->isArray())
            return arrayAddress(*c.operand);
        ExprPtr v = evalExpr(*c.operand);
        return convert(std::move(v), c.operand->type, c.type);
      }
      case NodeKind::Unary: {
        const auto &u = static_cast<const UnaryExpr &>(e);
        switch (u.op) {
          case UnOp::Neg: {
            ExprPtr v = evalExpr(*u.operand);
            bool flt = e.type->isDouble();
            DataType dt = flt ? DataType::F64 : DataType::I64;
            return emitBin(Op::Sub, zeroOf(dt), toReg(std::move(v), dt),
                           dt);
          }
          case UnOp::BitNot: {
            ExprPtr v = evalExpr(*u.operand);
            return emitBin(Op::Xor, toReg(std::move(v), DataType::I64),
                           makeConst(-1), DataType::I64);
          }
          case UnOp::LogNot:
          case UnOp::Deref: {
            if (u.op == UnOp::Deref) {
                LVal lv = lvalue(e);
                return loadLVal(lv);
            }
            // !x via branches (compare results live in the CC FIFO,
            // not a register, on WM).
            ExprPtr r = fn_->newVReg(DataType::I64);
            std::string t = fn_->newLabel();
            emit(rtl::makeAssign(r, makeConst(1)));
            emitCondJump(*u.operand, t, false);
            emit(rtl::makeAssign(r, makeConst(0)));
            startBlock(t);
            return r;
          }
          case UnOp::AddrOf: {
            if (u.operand->type && u.operand->type->isArray())
                return arrayAddress(*u.operand);
            LVal lv = lvalue(*u.operand);
            WS_ASSERT(lv.addr, "address of register variable");
            return lv.addr;
          }
          case UnOp::PreInc:
          case UnOp::PreDec:
          case UnOp::PostInc:
          case UnOp::PostDec: {
            LVal lv = lvalue(*u.operand);
            ExprPtr old = loadLVal(lv);
            bool inc = u.op == UnOp::PreInc || u.op == UnOp::PostInc;
            bool post = u.op == UnOp::PostInc || u.op == UnOp::PostDec;
            int64_t delta = 1;
            if (lv.type->isPointer())
                delta = lv.type->base()->size();
            ExprPtr nv;
            if (lv.type->isDouble()) {
                ExprPtr one = evalExpr(
                    FloatLitExpr(u.pos(), 1.0)); // pooled constant
                nv = emitBin(inc ? Op::Add : Op::Sub, old, one,
                             DataType::F64);
            } else {
                nv = emitBin(inc ? Op::Add : Op::Sub, old,
                             makeConst(delta), DataType::I64);
            }
            // For register lvalues the post-value must be captured
            // before the store overwrites the register.
            ExprPtr result = post ? old : nv;
            if (post && lv.reg) {
                result = fn_->newVReg(old->type());
                emit(rtl::makeAssign(result, old));
            }
            storeLVal(lv, nv);
            return result;
          }
        }
        WS_PANIC("bad unary op");
      }
      case NodeKind::Binary: {
        const auto &b = static_cast<const BinaryExpr &>(e);
        if (b.op == BinOp::LogAnd || b.op == BinOp::LogOr ||
                isRelationalBin(b.op)) {
            // Value context: materialize 0/1 through branches.
            ExprPtr r = fn_->newVReg(DataType::I64);
            std::string t = fn_->newLabel();
            emit(rtl::makeAssign(r, makeConst(1)));
            emitCondJump(e, t, true);
            emit(rtl::makeAssign(r, makeConst(0)));
            startBlock(t);
            return r;
        }

        // Pointer arithmetic (Sema put the pointer on the left).
        if (b.lhs->type->isPointer() &&
                (b.op == BinOp::Add || b.op == BinOp::Sub)) {
            ExprPtr l = evalExpr(*b.lhs);
            ExprPtr r = evalExpr(*b.rhs);
            int64_t esz = b.lhs->type->base()->size();
            if (b.rhs->type->isPointer()) {
                ExprPtr diff = emitBin(Op::Sub, l, r, DataType::I64);
                if (esz == 1)
                    return diff;
                int sh = log2Exact(esz);
                WS_ASSERT(sh >= 0, "pointer diff with odd element size");
                return emitBin(Op::Sar, diff, makeConst(sh),
                               DataType::I64);
            }
            ExprPtr off = evalScaledIndex(std::move(r), esz);
            return emitBin(b.op == BinOp::Add ? Op::Add : Op::Sub, l, off,
                           DataType::I64);
        }

        ExprPtr l = evalExpr(*b.lhs);
        ExprPtr r = evalExpr(*b.rhs);
        bool flt = e.type->isDouble();
        DataType dt = flt ? DataType::F64 : DataType::I64;
        Op op;
        switch (b.op) {
          case BinOp::Add: op = Op::Add; break;
          case BinOp::Sub: op = Op::Sub; break;
          case BinOp::Mul: op = Op::Mul; break;
          case BinOp::Div: op = Op::Div; break;
          case BinOp::Rem: op = Op::Rem; break;
          case BinOp::Shl: op = Op::Shl; break;
          case BinOp::Shr: op = Op::Sar; break;
          case BinOp::BitAnd: op = Op::And; break;
          case BinOp::BitOr: op = Op::Or; break;
          case BinOp::BitXor: op = Op::Xor; break;
          default: WS_PANIC("bad binary op");
        }
        return emitBin(op, std::move(l), std::move(r), dt);
      }
      case NodeKind::Assign: {
        const auto &a = static_cast<const AssignExpr &>(e);
        if (a.op == BinOp::None) {
            ExprPtr v = evalExpr(*a.rhs);
            LVal lv = lvalue(*a.lhs);
            storeLVal(lv, v);
            // The value of the assignment is the stored (converted)
            // value; chars read back truncated.
            if (lv.type->isChar() && !lv.reg)
                return emitBin(Op::And, toReg(std::move(v), DataType::I64),
                               makeConst(255), DataType::I64);
            if (lv.reg)
                return lv.reg;
            return v;
        }
        // Compound: load, op, store.
        LVal lv = lvalue(*a.lhs);
        ExprPtr old = loadLVal(lv);
        ExprPtr rhs = evalExpr(*a.rhs);
        ExprPtr nv;
        if (lv.type->isPointer()) {
            ExprPtr off = evalScaledIndex(std::move(rhs),
                                          lv.type->base()->size());
            nv = emitBin(a.op == BinOp::Add ? Op::Add : Op::Sub, old, off,
                         DataType::I64);
        } else {
            bool flt = lv.type->isDouble();
            DataType dt = flt ? DataType::F64 : DataType::I64;
            if (flt && !isFloatType(rhs->type()))
                rhs = convert(rhs, Type::intTy(), Type::doubleTy());
            Op op;
            switch (a.op) {
              case BinOp::Add: op = Op::Add; break;
              case BinOp::Sub: op = Op::Sub; break;
              case BinOp::Mul: op = Op::Mul; break;
              case BinOp::Div: op = Op::Div; break;
              case BinOp::Rem: op = Op::Rem; break;
              default: WS_PANIC("bad compound op");
            }
            nv = emitBin(op, old, rhs, dt);
        }
        storeLVal(lv, nv);
        return nv;
    }
      case NodeKind::Cond: {
        const auto &c = static_cast<const CondExpr &>(e);
        bool flt = e.type->isDouble();
        ExprPtr r = fn_->newVReg(flt ? DataType::F64 : DataType::I64);
        std::string elseL = fn_->newLabel();
        std::string endL = fn_->newLabel();
        emitCondJump(*c.cond, elseL, false);
        emit(rtl::makeAssign(r, toReg(evalExpr(*c.thenExpr),
                                      flt ? DataType::F64
                                          : DataType::I64)));
        emit(rtl::makeJump(endL));
        startBlock(elseL);
        emit(rtl::makeAssign(r, toReg(evalExpr(*c.elseExpr),
                                      flt ? DataType::F64
                                          : DataType::I64)));
        startBlock(endL);
        return r;
      }
      case NodeKind::Index: {
        LVal lv = lvalue(e);
        if (e.type->isArray())
            return lv.addr;
        return loadLVal(lv);
      }
      case NodeKind::Call: {
        const auto &c = static_cast<const CallExpr &>(e);
        // Evaluate all arguments first (they may contain calls).
        std::vector<ExprPtr> vals;
        for (const auto &a : c.args)
            vals.push_back(toReg(evalExpr(*a),
                                 a->type->isDouble() ? DataType::F64
                                                     : DataType::I64));
        Inst call = rtl::makeCall(c.callee);
        int intArg = 0, fltArg = 0;
        for (size_t i = 0; i < vals.size(); ++i) {
            bool isF = isFloatType(vals[i]->type());
            int idx = traits_.firstArgReg + (isF ? fltArg++ : intArg++);
            WS_ASSERT(idx < traits_.firstArgReg + traits_.numArgRegs,
                      "too many arguments to " + c.callee);
            ExprPtr argReg = makeReg(isF ? RegFile::Flt : RegFile::Int,
                                     idx,
                                     isF ? DataType::F64 : DataType::I64);
            emit(rtl::makeAssign(argReg, vals[i]));
            call.extraUses.push_back(argReg);
        }
        emit(std::move(call));
        if (c.type->isVoid())
            return makeConst(0);
        bool flt = c.type->isDouble();
        ExprPtr ret = makeReg(flt ? RegFile::Flt : RegFile::Int,
                              traits_.retReg,
                              flt ? DataType::F64 : DataType::I64);
        ExprPtr r = fn_->newVReg(flt ? DataType::F64 : DataType::I64);
        emit(rtl::makeAssign(r, ret));
        return r;
      }
      default:
        WS_PANIC("evalExpr: unexpected node kind");
    }
}

void
Expander::expandStmt(const Stmt &s)
{
    if (s.pos().valid())
        curPos_ = s.pos();
    switch (s.kind()) {
      case NodeKind::BlockStmt: {
        const auto &b = static_cast<const BlockStmt &>(s);
        for (const auto &st : b.stmts)
            expandStmt(*st);
        break;
      }
      case NodeKind::DeclStmt: {
        const auto &d = static_cast<const DeclStmt &>(s);
        for (const auto &v : d.vars) {
            if (v->addressTaken || v->type->isArray()) {
                int64_t off = fn_->allocFrameSlot(v->type->size(),
                                                  v->type->align());
                slots_[v.get()] = off;
                if (v->init.scalar) {
                    ExprPtr val = toReg(
                        evalExpr(*v->init.scalar),
                        v->type->isDouble() ? DataType::F64
                                            : DataType::I64);
                    ExprPtr sp = makeReg(RegFile::Int, traits_.spReg,
                                         DataType::I64);
                    ExprPtr a = emitBin(Op::Add, sp, makeConst(off),
                                        DataType::I64);
                    emit(rtl::makeStore(a, val, dataTypeOf(v->type)));
                }
                // Stack arrays are not zero-initialized (like C).
            } else {
                DataType dt = dataTypeOf(v->type);
                bool flt = isFloatType(dt);
                ExprPtr r = fn_->newVReg(flt ? DataType::F64
                                             : DataType::I64);
                regVars_[v.get()] = r;
                if (v->init.scalar) {
                    ExprPtr val = evalExpr(*v->init.scalar);
                    if (flt && !isFloatType(val->type()))
                        val = convert(val, Type::intTy(),
                                      Type::doubleTy());
                    if (v->type->isChar())
                        val = rtl::makeBin(Op::And, val, makeConst(255));
                    emit(rtl::makeAssign(r, val, "init " + v->name));
                }
            }
        }
        break;
      }
      case NodeKind::ExprStmt:
        evalExpr(*static_cast<const ExprStmt &>(s).expr);
        break;
      case NodeKind::IfStmt: {
        const auto &i = static_cast<const IfStmt &>(s);
        std::string elseL = fn_->newLabel();
        emitCondJump(*i.cond, elseL, false);
        expandStmt(*i.thenStmt);
        if (i.elseStmt) {
            std::string endL = fn_->newLabel();
            if (!cur_->terminator())
                emit(rtl::makeJump(endL));
            startBlock(elseL);
            expandStmt(*i.elseStmt);
            startBlock(endL);
        } else {
            startBlock(elseL);
        }
        break;
      }
      case NodeKind::WhileStmt: {
        const auto &w = static_cast<const WhileStmt &>(s);
        std::string headL = fn_->newLabel();
        std::string contL = fn_->newLabel();
        std::string exitL = fn_->newLabel();
        if (remarks_)
            remarks_->loopId(fn_->name(), headL, w.pos());
        emitCondJump(*w.cond, exitL, false); // guard
        startBlock(headL);
        breakLabels_.push_back(exitL);
        continueLabels_.push_back(contL);
        expandStmt(*w.body);
        breakLabels_.pop_back();
        continueLabels_.pop_back();
        startBlock(contL);
        emitCondJump(*w.cond, headL, true); // bottom test
        startBlock(exitL);
        break;
      }
      case NodeKind::DoWhileStmt: {
        const auto &w = static_cast<const DoWhileStmt &>(s);
        std::string headL = fn_->newLabel();
        std::string contL = fn_->newLabel();
        std::string exitL = fn_->newLabel();
        if (remarks_)
            remarks_->loopId(fn_->name(), headL, w.pos());
        startBlock(headL);
        breakLabels_.push_back(exitL);
        continueLabels_.push_back(contL);
        expandStmt(*w.body);
        breakLabels_.pop_back();
        continueLabels_.pop_back();
        startBlock(contL);
        emitCondJump(*w.cond, headL, true);
        startBlock(exitL);
        break;
      }
      case NodeKind::ForStmt: {
        const auto &f = static_cast<const ForStmt &>(s);
        std::string headL = fn_->newLabel();
        std::string contL = fn_->newLabel();
        std::string exitL = fn_->newLabel();
        if (remarks_)
            remarks_->loopId(fn_->name(), headL, f.pos());
        if (f.init)
            evalExpr(*f.init);
        if (f.cond)
            emitCondJump(*f.cond, exitL, false); // guard
        startBlock(headL);
        breakLabels_.push_back(exitL);
        continueLabels_.push_back(contL);
        expandStmt(*f.body);
        breakLabels_.pop_back();
        continueLabels_.pop_back();
        startBlock(contL);
        if (f.step)
            evalExpr(*f.step);
        if (f.cond) {
            emitCondJump(*f.cond, headL, true); // bottom test
        } else {
            emit(rtl::makeJump(headL));
        }
        startBlock(exitL);
        break;
      }
      case NodeKind::ReturnStmt: {
        const auto &r = static_cast<const ReturnStmt &>(s);
        Inst ret = rtl::makeReturn();
        if (r.value) {
            bool flt = r.value->type->isDouble();
            ExprPtr reg = makeReg(flt ? RegFile::Flt : RegFile::Int,
                                  traits_.retReg,
                                  flt ? DataType::F64 : DataType::I64);
            emit(rtl::makeAssign(reg, toReg(evalExpr(*r.value),
                                            flt ? DataType::F64
                                                : DataType::I64)));
            ret.extraUses.push_back(reg);
        }
        emit(std::move(ret));
        startBlock();
        break;
      }
      case NodeKind::BreakStmt:
        WS_ASSERT(!breakLabels_.empty(), "break outside loop");
        emit(rtl::makeJump(breakLabels_.back()));
        startBlock();
        break;
      case NodeKind::ContinueStmt:
        WS_ASSERT(!continueLabels_.empty(), "continue outside loop");
        emit(rtl::makeJump(continueLabels_.back()));
        startBlock();
        break;
      default:
        WS_PANIC("expandStmt: unexpected node kind");
    }
}

} // anonymous namespace

void
expandUnit(const TranslationUnit &unit, const rtl::MachineTraits &traits,
           rtl::Program &out, obs::RemarkCollector *remarks)
{
    Expander e(unit, traits, out, remarks);
    e.run();
}

} // namespace wmstream::expand
