/**
 * @file
 * The evaluation programs, written in mini-C.
 *
 * Table II of the paper measures nine programs: banner, bubblesort,
 * cal, dhrystone, dot-product, iir, quicksort, sieve, and whetstone.
 * The original sources are 1980s Unix/benchmark code we reproduce as
 * faithful mini-C kernels (see DESIGN.md for the substitution notes):
 * each program computes a checksum instead of doing terminal I/O, and
 * dhrystone/whetstone are reduced to their characteristic operation
 * mixes (string copies and record-ish assignments; floating modules
 * with polynomial kernels in place of libm calls).
 *
 * Every program returns a checksum from main(); the differential tests
 * verify the checksum against the AST interpreter for every compiler
 * configuration.
 */

#ifndef WMSTREAM_PROGRAMS_PROGRAMS_H
#define WMSTREAM_PROGRAMS_PROGRAMS_H

#include <string>
#include <vector>

namespace wmstream::programs {

/** A named benchmark program. */
struct BenchmarkProgram
{
    std::string name;
    std::string source;
};

/** The nine Table-II programs, in the paper's order. */
const std::vector<BenchmarkProgram> &tableIIPrograms();

/** Source of a named program (panics if unknown). */
const std::string &programSource(const std::string &name);

/**
 * The 5th Livermore loop with array size @p n (paper: 100,000).
 * @p reps repeats the kernel so it dominates over initialization and
 * checksum code (the paper timed the loop itself).
 */
std::string livermore5Source(int n, int reps = 1);

/** A dot product of length @p n (the paper's Section 2 example). */
std::string dotProductSource(int n);

/**
 * A loop with a recurrence of configurable degree:
 * x[i] = z[i] * (y[i] - x[i-degree]). Used by the ablation benches.
 */
std::string recurrenceDegreeSource(int n, int degree);

} // namespace wmstream::programs

#endif // WMSTREAM_PROGRAMS_PROGRAMS_H
