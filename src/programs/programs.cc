#include "programs/programs.h"

#include "support/diag.h"
#include "support/str.h"

namespace wmstream::programs {

namespace {

// ---------------------------------------------------------------- banner
// Renders a message into a 8x120 character banner from a 5-glyph font,
// like Unix banner(1): short row-segment copies dominate.
const char *kBanner = R"(
char font[40];
char msg[16] = "HELLOWORLD";
char out[8][120];
int width = 0;

void render(void)
{
    int c, r, k, col, g, bits, mask;
    col = 0;
    c = 0;
    while (msg[c]) {
        g = (msg[c] - 'A') % 5;
        for (r = 0; r < 8; r++) {
            bits = font[g * 8 + r % 5];
            mask = 1;
            for (k = 0; k < 8; k++) {
                /* bit test dominates: conditional writes do not
                   stream */
                if (bits & mask)
                    out[r][col + k] = '#';
                else
                    out[r][col + k] = ' ';
                mask = mask + mask;
                if (mask > 255)
                    mask = 1;
            }
        }
        col = col + 10;
        c = c + 1;
    }
    width = col;
}

int main(void)
{
    int i, r, k, sum, iter;
    for (i = 0; i < 40; i++)
        font[i] = (i * 73 + 29) % 256;
    for (iter = 0; iter < 20; iter++) {
        if ((iter & 7) == 0)
            for (r = 0; r < 8; r++)
                for (k = 0; k < 120; k++)
                    out[r][k] = ' ';
        render();
    }
    sum = 0;
    for (r = 0; r < 8; r++)
        for (k = 0; k < width; k++)
            sum = sum + out[r][k] * (k + 1);
    return sum & 65535;
}
)";

// ------------------------------------------------------------ bubblesort
// Bubble sort written as repeated "carry the maximum" passes: the
// carried element lives in a register, the array is read once and
// written once per step — the streaming-friendly formulation.
const char *kBubblesort = R"(
int n = 150;
int a[150];

int main(void)
{
    int i, j, carry, x, lo, hi, sum;
    for (i = 0; i < n; i++)
        a[i] = (i * 37 + 11) % 101;
    for (i = 0; i < n - 1; i++) {
        carry = a[0];
        for (j = 1; j < n; j++) {
            x = a[j];
            lo = x;
            hi = carry;
            if (carry <= x) {
                lo = carry;
                hi = x;
            }
            a[j - 1] = lo;
            carry = hi;
        }
        a[n - 1] = carry;
    }
    sum = 0;
    for (i = 0; i < n; i++)
        sum = sum + a[i] * (i + 1);
    return sum & 65535;
}
)";

// ------------------------------------------------------------------- cal
// Calendar formatter like Unix cal(1): blank-fills a page buffer,
// computes the weekday layout, and deposits day numbers.
const char *kCal = R"(
char page[7][21];
int mdays[12] = {31, 28, 31, 30, 31, 30, 31, 31, 30, 31, 30, 31};

int weekday(int year, int month, int day)
{
    int a, y, m;
    a = (14 - month) / 12;
    y = year - a;
    m = month + 12 * a - 2;
    return (day + y + y / 4 - y / 100 + y / 400 + (31 * m) / 12) % 7;
}

void putnum(int row, int col, int v)
{
    if (v >= 10)
        page[row][col] = '0' + v / 10;
    else
        page[row][col] = ' ';
    page[row][col + 1] = '0' + v % 10;
}

int main(void)
{
    int month, r, c, wd, day, row, sum, year;
    year = 1991;
    sum = 0;
    for (month = 1; month <= 12; month++) {
        /* blank the month grid: the streaming opportunity cal shows */
        for (r = 0; r < 7; r++)
            for (c = 0; c < 21; c++)
                page[r][c] = ' ';
        wd = weekday(year, month, 1);
        row = 1;
        /* weekday header */
        for (c = 0; c < 7; c++)
            page[0][c * 3] = 'S' + c;
        for (day = 1; day <= mdays[month - 1]; day++) {
            int v, digits;
            putnum(row, wd * 3, day);
            /* per-day formatting arithmetic (scalar) */
            v = day + month * 100 + year * 10000;
            digits = 0;
            while (v) {
                digits = digits + v % 10;
                v = v / 10;
            }
            sum = sum + digits;
            wd = wd + 1;
            if (wd == 7) {
                wd = 0;
                row = row + 1;
            }
        }
        for (r = 0; r < 7; r++)
            for (c = 0; c < 21; c++)
                sum = sum + page[r][c];
    }
    return sum & 65535;
}
)";

// ------------------------------------------------------------- dhrystone
// Dhrystone-flavored mix without structs: parallel arrays play the
// records, and the characteristic 30-character string copies and
// comparisons dominate, exactly the loops the paper says stream.
const char *kDhrystone = R"(
char str1[32] = "DHRYSTONE PROGRAM, 1ST STRING";
char str2[32] = "DHRYSTONE PROGRAM, 2ND STRING";
char buf1[32];
char buf2[32];
int recIntComp[50];
int recDiscr[50];
int arr1[50];
int arr2[50];

void strcopy(char *d, char *s)
{
    while (*s) {
        *d = *s;
        d = d + 1;
        s = s + 1;
    }
    *d = 0;
}

int strcomp(char *a, char *b)
{
    while (*a && *a == *b) {
        a = a + 1;
        b = b + 1;
    }
    return *a - *b;
}

int func2(int i)
{
    return (i + 3) % 7;
}

int func3(int v)
{
    int k, acc;
    acc = v;
    for (k = 0; k < 8; k++) {
        if (acc & 1)
            acc = acc * 3 + 1;
        else
            acc = acc / 2;
        if (acc > 4096)
            acc = acc - 4095;
    }
    return acc;
}

void proc8(int idx, int val)
{
    int i;
    arr1[idx] = val;
    arr1[idx + 1] = arr1[idx];
    for (i = idx; i <= idx + 5; i++)
        arr2[i] = i;
    arr2[idx + 5] = arr2[idx + 5] + 1;
}

int main(void)
{
    int run, i, intLoc1, intLoc2, intLoc3, sum;
    sum = 0;
    for (i = 0; i < 50; i++) {
        recIntComp[i] = 0;
        recDiscr[i] = i % 3;
        arr1[i] = 0;
        arr2[i] = 0;
    }
    for (run = 0; run < 100; run++) {
        intLoc1 = 2;
        intLoc2 = 3;
        strcopy(buf1, str1);
        strcopy(buf2, str2);
        intLoc3 = intLoc2 * intLoc1 + func2(run);
        intLoc3 = intLoc3 + func3(run) % 5;
        recIntComp[run % 50] = intLoc3;
        recDiscr[run % 50] = recIntComp[run % 50] % 3;
        proc8(run % 40, intLoc3);
        if (strcomp(buf1, buf2) < 0)
            sum = sum + 1;
        sum = sum + intLoc3;
    }
    for (i = 0; i < 50; i++)
        sum = sum + recIntComp[i] + arr1[i] + arr2[i] * 3;
    i = 0;
    while (buf1[i]) {
        sum = sum + buf1[i];
        i = i + 1;
    }
    return sum & 65535;
}
)";

// --------------------------------------------------------------- iir
// Direct-form IIR filter: y[i] = b0*x[i] + b1*x[i-1] - a1*y[i-1].
// The y[i-1] term is the recurrence; x streams in twice, y streams out.
const char *kIir = R"(
int n = 4000;
double x[4000];
double y[4000];

int main(void)
{
    int i;
    double b0, b1, b2, b3, a1, a2, a3, acc;
    double xn, xn1, xn2, xn3, yn, yn1, yn2, yn3;
    b0 = 0.2569;
    b1 = 0.1003;
    b2 = 0.1003;
    b3 = 0.2569;
    a1 = -0.577;
    a2 = 0.4218;
    a3 = -0.0563;
    for (i = 0; i < n; i++)
        x[i] = ((i * 17) & 63) * 0.125 - 3.5;
    /* 3rd-order direct-form IIR: the x/y histories are carried in
       registers; x streams in, y streams out */
    xn1 = 0.0;
    xn2 = 0.0;
    xn3 = 0.0;
    yn1 = 0.0;
    yn2 = 0.0;
    yn3 = 0.0;
    for (i = 0; i < n; i++) {
        xn = x[i];
        yn = b0 * xn + b1 * xn1 + b2 * xn2 + b3 * xn3 - a1 * yn1 -
             a2 * yn2 - a3 * yn3;
        y[i] = yn;
        xn3 = xn2;
        xn2 = xn1;
        xn1 = xn;
        yn3 = yn2;
        yn2 = yn1;
        yn1 = yn;
    }
    acc = 0.0;
    for (i = 0; i < n; i++)
        acc = acc + y[i];
    return acc;
}
)";

// ------------------------------------------------------------- quicksort
// Recursive quicksort; the pointer-walking partition scans are the
// only streaming opportunity (the paper measured just 1 percent).
const char *kQuicksort = R"(
int n = 300;
int a[300];

void sort(int lo, int hi)
{
    int i, j, p, t;
    if (lo >= hi)
        return;
    p = a[(lo + hi) / 2];
    i = lo;
    j = hi;
    while (i <= j) {
        while (a[i] < p)
            i = i + 1;
        while (a[j] > p)
            j = j - 1;
        if (i <= j) {
            t = a[i];
            a[i] = a[j];
            a[j] = t;
            i = i + 1;
            j = j - 1;
        }
    }
    sort(lo, j);
    sort(i, hi);
}

int main(void)
{
    int i, sum;
    for (i = 0; i < n; i++)
        a[i] = (i * 193 + 71) % 997;
    sort(0, n - 1);
    sum = 0;
    for (i = 0; i < n; i++)
        sum = sum + a[i] * (i % 7 + 1);
    return sum & 65535;
}
)";

// ----------------------------------------------------------------- sieve
// The classic Byte sieve: the flag initialization is a byte stream,
// the scan reads the flags as a stream.
const char *kSieve = R"(
int n = 4000;
char flags[4000];

int main(void)
{
    int i, k, count, iter, prime;
    count = 0;
    for (iter = 0; iter < 5; iter++) {
        for (i = 0; i < n; i++)
            flags[i] = 1;
        count = 0;
        for (i = 0; i < n; i++) {
            if (flags[i]) {
                prime = i + i + 3;
                for (k = i + prime; k < n; k = k + prime)
                    flags[k] = 0;
                count = count + 1;
            }
        }
    }
    return count;
}
)";

// ------------------------------------------------------------- whetstone
// Whetstone-flavored floating mix: the N1/N2/N3 module shapes with
// polynomial kernels standing in for the libm calls (no transcendental
// library exists on the simulated machine). Mostly scalar floating
// arithmetic: streaming finds little, as in the paper.
const char *kWhetstone = R"(
double e1[4];
double e2[8];
double t, t1, t2;

double poly(double v)
{
    return ((0.0059 * v - 0.0457) * v + 0.998) * v - 0.0000341;
}

void pa(double *e)
{
    int j;
    for (j = 0; j < 6; j++) {
        e[0] = (e[0] + e[1] + e[2] - e[3]) * t;
        e[1] = (e[0] + e[1] - e[2] + e[3]) * t;
        e[2] = (e[0] - e[1] + e[2] + e[3]) * t;
        e[3] = (0.0 - e[0] + e[1] + e[2] + e[3]) / t2;
    }
}

int main(void)
{
    int i, iter;
    double x1, x2, x3, x4, x, y, z, sum;
    t = 0.499975;
    t1 = 0.50025;
    t2 = 2.0;
    sum = 0.0;
    for (iter = 0; iter < 120; iter++) {
        /* module 1: simple identifiers (fresh start each pass, as the
           original N1 module re-establishes its fixpoint) */
        x1 = 1.0;
        x2 = -1.0;
        x3 = -1.0;
        x4 = -1.0;
        for (i = 0; i < 5; i++) {
            x1 = (x1 + x2 + x3 - x4) * t;
            x2 = (x1 + x2 - x3 + x4) * t;
            x3 = (x1 - x2 + x3 + x4) * t;
            x4 = (0.0 - x1 + x2 + x3 + x4) * t;
        }
        /* module 2: array elements */
        e1[0] = 1.0;
        e1[1] = -1.0;
        e1[2] = -1.0;
        e1[3] = -1.0;
        for (i = 0; i < 6; i++) {
            e1[0] = (e1[0] + e1[1] + e1[2] - e1[3]) * t;
            e1[1] = (e1[0] + e1[1] - e1[2] + e1[3]) * t;
            e1[2] = (e1[0] - e1[1] + e1[2] + e1[3]) * t;
            e1[3] = (0.0 - e1[0] + e1[1] + e1[2] + e1[3]) / t2;
        }
        /* module 3: procedure call with array parameter */
        pa(e1);
        /* module 6: array stores (the original's array-element
           housekeeping; a small bounded stream, every other pass) */
        if ((iter & 1) == 0)
            for (i = 0; i < 8; i++)
                e2[i] = t * i;
        /* module 7: polynomial "trig" (bounded fixpoint iteration) */
        x = 0.5;
        y = 0.5;
        for (i = 0; i < 4; i++) {
            x = t * (poly(x) + poly(y));
            y = t * (poly(x) + poly(y));
        }
        /* module 11: polynomial "exp/log" */
        z = 0.75;
        for (i = 0; i < 4; i++)
            z = poly(z + t1) / t2 + 0.5;
        sum = sum + x + y + z + x1 + x4 + e1[0] + e1[3] + e2[7];
    }
    return sum * 100.0;
}
)";

std::vector<BenchmarkProgram>
makePrograms()
{
    return {
        {"banner", kBanner},
        {"bubblesort", kBubblesort},
        {"cal", kCal},
        {"dhrystone", kDhrystone},
        {"dot-product", dotProductSource(8000)},
        {"iir", kIir},
        {"quicksort", kQuicksort},
        {"sieve", kSieve},
        {"whetstone", kWhetstone},
    };
}

} // anonymous namespace

const std::vector<BenchmarkProgram> &
tableIIPrograms()
{
    static const std::vector<BenchmarkProgram> programs = makePrograms();
    return programs;
}

const std::string &
programSource(const std::string &name)
{
    for (const auto &p : tableIIPrograms())
        if (p.name == name)
            return p.source;
    WS_PANIC("unknown benchmark program " + name);
}

std::string
livermore5Source(int n, int reps)
{
    return strFormat(R"(
int n = %d;
int reps = %d;
double x[%d];
double y[%d];
double z[%d];

int main(void)
{
    int i, rep;
    double s;
    for (i = 0; i < n; i++) {
        x[i] = 0.5 + (i & 7) * 0.125;
        y[i] = 2.5 + (i & 15) * 0.0625;
        z[i] = 0.5;
    }
    /* the 5th Livermore loop: tri-diagonal elimination below the
       diagonal, x[i] defined in terms of x[i-1] */
    for (rep = 0; rep < reps; rep++)
        for (i = 2; i < n; i++)
            x[i] = z[i] * (y[i] - x[i - 1]);
    s = 0.0;
    for (i = 0; i < n; i++)
        s = s + x[i];
    return s * 16.0;
}
)",
                     n, reps, n + 1, n + 1, n + 1);
}

std::string
dotProductSource(int n)
{
    return strFormat(R"(
int n = %d;
double a[%d];
double b[%d];

int main(void)
{
    int i;
    double s;
    for (i = 0; i < n; i++) {
        a[i] = 0.25 + (i & 31) * 0.03125;
        b[i] = 1.5 - (i & 7) * 0.125;
    }
    s = 0.0;
    for (i = 0; i < n; i++)
        s = s + a[i] * b[i];
    return s;
}
)",
                     n, n, n);
}

std::string
recurrenceDegreeSource(int n, int degree)
{
    return strFormat(R"(
int n = %d;
double x[%d];
double y[%d];
double z[%d];

int main(void)
{
    int i;
    double s;
    for (i = 0; i < n; i++) {
        x[i] = 0.5 + (i & 7) * 0.125;
        y[i] = 2.5 + (i & 15) * 0.0625;
        z[i] = 0.5;
    }
    for (i = %d; i < n; i++)
        x[i] = z[i] * (y[i] - x[i - %d]);
    s = 0.0;
    for (i = 0; i < n; i++)
        s = s + x[i];
    return s * 16.0;
}
)",
                     n, n + 1, n + 1, n + 1, degree + 1, degree);
}

} // namespace wmstream::programs
