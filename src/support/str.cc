#include "support/str.h"

#include <cstdarg>
#include <cstdio>

namespace wmstream {

std::vector<std::string>
splitString(const std::string &s, char sep)
{
    std::vector<std::string> out;
    std::string cur;
    for (char c : s) {
        if (c == sep) {
            out.push_back(cur);
            cur.clear();
        } else {
            cur.push_back(c);
        }
    }
    out.push_back(cur);
    return out;
}

std::string
trimString(const std::string &s)
{
    size_t b = s.find_first_not_of(" \t\r\n");
    if (b == std::string::npos)
        return "";
    size_t e = s.find_last_not_of(" \t\r\n");
    return s.substr(b, e - b + 1);
}

bool
startsWith(const std::string &s, const std::string &prefix)
{
    return s.size() >= prefix.size() &&
           s.compare(0, prefix.size(), prefix) == 0;
}

std::string
strFormat(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    va_list ap2;
    va_copy(ap2, ap);
    int n = std::vsnprintf(nullptr, 0, fmt, ap);
    va_end(ap);
    std::string out(n > 0 ? n : 0, '\0');
    if (n > 0)
        std::vsnprintf(out.data(), out.size() + 1, fmt, ap2);
    va_end(ap2);
    return out;
}

} // namespace wmstream
