#include "support/diag.h"

#include <cstring>
#include <sstream>
#include <utility>

namespace wmstream {

std::string
SourcePos::str() const
{
    std::ostringstream os;
    os << line << ":" << column;
    return os.str();
}

std::string
Diagnostic::str() const
{
    std::ostringstream os;
    switch (level) {
      case DiagLevel::Error: os << "error"; break;
      case DiagLevel::Warning: os << "warning"; break;
      case DiagLevel::Note: os << "note"; break;
    }
    if (pos.valid())
        os << " at " << pos.str();
    os << ": " << message;
    return os.str();
}

void
DiagEngine::error(SourcePos pos, std::string msg)
{
    messages_.push_back({DiagLevel::Error, pos, std::move(msg)});
    ++numErrors_;
}

void
DiagEngine::warning(SourcePos pos, std::string msg)
{
    messages_.push_back({DiagLevel::Warning, pos, std::move(msg)});
}

void
DiagEngine::note(SourcePos pos, std::string msg)
{
    messages_.push_back({DiagLevel::Note, pos, std::move(msg)});
}

std::string
DiagEngine::str() const
{
    std::ostringstream os;
    for (const auto &d : messages_)
        os << d.str() << "\n";
    return os.str();
}

namespace {

/** Basename of a __FILE__ path (stable across build directories). */
const char *
fileBasename(const char *file)
{
    const char *slash = std::strrchr(file, '/');
    return slash ? slash + 1 : file;
}

} // anonymous namespace

InternalError::InternalError(const char *file, int line, std::string msg)
    : msg_(std::move(msg)), file_(fileBasename(file)), line_(line)
{
    std::ostringstream os;
    os << "wmstream panic at " << file_ << ":" << line_ << ": " << msg_;
    what_ = os.str();
}

std::string
InternalError::signature() const
{
    std::ostringstream os;
    os << "panic@" << file_ << ":" << line_;
    return os.str();
}

CancelledError::CancelledError(std::string reason, std::string detail)
    : reason_(std::move(reason))
{
    what_ = "compile cancelled (" + reason_ + ")";
    if (!detail.empty())
        what_ += ": " + detail;
}

void
wsPanic(const char *file, int line, const std::string &msg)
{
    // Throw instead of exiting: library code must stay embeddable in
    // long-lived services. The recognizable "internal error" exit
    // status 70 (vs SIGABRT, vs user-error exits) is applied by the
    // tool mains that catch this (see wmc exit-code table).
    throw InternalError(file, line, msg);
}

} // namespace wmstream
