#include "support/diag.h"

#include <cstdio>
#include <cstdlib>
#include <sstream>

namespace wmstream {

std::string
SourcePos::str() const
{
    std::ostringstream os;
    os << line << ":" << column;
    return os.str();
}

std::string
Diagnostic::str() const
{
    std::ostringstream os;
    switch (level) {
      case DiagLevel::Error: os << "error"; break;
      case DiagLevel::Warning: os << "warning"; break;
      case DiagLevel::Note: os << "note"; break;
    }
    if (pos.valid())
        os << " at " << pos.str();
    os << ": " << message;
    return os.str();
}

void
DiagEngine::error(SourcePos pos, std::string msg)
{
    messages_.push_back({DiagLevel::Error, pos, std::move(msg)});
    ++numErrors_;
}

void
DiagEngine::warning(SourcePos pos, std::string msg)
{
    messages_.push_back({DiagLevel::Warning, pos, std::move(msg)});
}

void
DiagEngine::note(SourcePos pos, std::string msg)
{
    messages_.push_back({DiagLevel::Note, pos, std::move(msg)});
}

std::string
DiagEngine::str() const
{
    std::ostringstream os;
    for (const auto &d : messages_)
        os << d.str() << "\n";
    return os.str();
}

void
wsPanic(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "wmstream panic at %s:%d: %s\n", file, line,
                 msg.c_str());
    // Exit with a recognizable "internal error" status instead of
    // SIGABRT so drivers and CI can tell a compiler bug apart from a
    // crash and from user-error exits (see wmc exit-code table).
    std::exit(70);
}

} // namespace wmstream
