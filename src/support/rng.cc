#include "support/rng.h"

#include "support/diag.h"

namespace wmstream::support {

namespace {

/** SplitMix64 step: mixes @p x and returns the next output. */
uint64_t
splitmix64(uint64_t &x)
{
    x += 0x9E3779B97F4A7C15ull;
    uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
}

uint64_t
rotl(uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // anonymous namespace

Rng::Rng(uint64_t seed)
{
    // SplitMix64 expansion guarantees a non-zero, well-mixed state
    // for every seed, as the xoshiro authors recommend.
    uint64_t x = seed;
    for (auto &w : s_)
        w = splitmix64(x);
}

uint64_t
Rng::next()
{
    const uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
}

uint64_t
Rng::nextBelow(uint64_t bound)
{
    WS_ASSERT(bound != 0, "nextBelow(0)");
    // Lemire's multiply-shift method with rejection: exactly uniform.
    unsigned __int128 m =
        static_cast<unsigned __int128>(next()) * bound;
    auto lo = static_cast<uint64_t>(m);
    if (lo < bound) {
        const uint64_t threshold = -bound % bound;
        while (lo < threshold) {
            m = static_cast<unsigned __int128>(next()) * bound;
            lo = static_cast<uint64_t>(m);
        }
    }
    return static_cast<uint64_t>(m >> 64);
}

int
Rng::range(int lo, int hi)
{
    WS_ASSERT(lo <= hi, "range(lo > hi)");
    const uint64_t span = static_cast<uint64_t>(hi) -
                          static_cast<uint64_t>(lo) + 1;
    return static_cast<int>(lo + static_cast<int64_t>(nextBelow(span)));
}

bool
Rng::flip()
{
    return next() >> 63;
}

Rng
Rng::split(uint64_t streamId) const
{
    // Fold the parent state and the stream id through SplitMix64 so
    // child streams are decorrelated from the parent and each other.
    uint64_t x = s_[0] ^ rotl(s_[2], 29);
    uint64_t h = splitmix64(x);
    x ^= streamId * 0xD1342543DE82EF95ull + 0x2545F4914F6CDD1Dull;
    h ^= splitmix64(x);
    return Rng(h);
}

} // namespace wmstream::support
