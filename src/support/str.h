/**
 * @file
 * Small string utilities shared across the compiler and simulator.
 */

#ifndef WMSTREAM_SUPPORT_STR_H
#define WMSTREAM_SUPPORT_STR_H

#include <string>
#include <vector>

namespace wmstream {

/** Split @p s on @p sep, keeping empty fields. */
std::vector<std::string> splitString(const std::string &s, char sep);

/** Strip leading and trailing ASCII whitespace. */
std::string trimString(const std::string &s);

/** True if @p s starts with @p prefix. */
bool startsWith(const std::string &s, const std::string &prefix);

/** printf-style formatting into a std::string. */
std::string strFormat(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

} // namespace wmstream

#endif // WMSTREAM_SUPPORT_STR_H
