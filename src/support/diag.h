/**
 * @file
 * Diagnostic reporting for the wmstream compiler.
 *
 * A DiagEngine collects errors and warnings with source positions. The
 * front end reports through it; callers inspect the collected messages
 * after a phase runs. Internal invariant violations use wsPanic(),
 * user-visible input errors use DiagEngine::error().
 */

#ifndef WMSTREAM_SUPPORT_DIAG_H
#define WMSTREAM_SUPPORT_DIAG_H

#include <cstdint>
#include <string>
#include <vector>

namespace wmstream {

/** A position in a mini-C source buffer (1-based line and column). */
struct SourcePos
{
    int line = 0;
    int column = 0;

    bool valid() const { return line > 0; }
    std::string str() const;
};

/** Severity of a diagnostic message. */
enum class DiagLevel { Error, Warning, Note };

/** One diagnostic: severity, position, and message text. */
struct Diagnostic
{
    DiagLevel level;
    SourcePos pos;
    std::string message;

    std::string str() const;
};

/**
 * Collects diagnostics produced while processing one compilation unit.
 *
 * The engine never throws on user errors; phases check hasErrors() and
 * bail out. This mirrors the paper's compiler structure where the front
 * end is the only component that sees user input.
 */
class DiagEngine
{
  public:
    void error(SourcePos pos, std::string msg);
    void warning(SourcePos pos, std::string msg);
    void note(SourcePos pos, std::string msg);

    bool hasErrors() const { return numErrors_ > 0; }
    int errorCount() const { return numErrors_; }
    const std::vector<Diagnostic> &messages() const { return messages_; }

    /** All diagnostics rendered one per line (for tests and tools). */
    std::string str() const;

  private:
    std::vector<Diagnostic> messages_;
    int numErrors_ = 0;
};

/**
 * Abort with a message on an internal invariant violation.
 *
 * Equivalent to gem5's panic(): this is a compiler bug, never a user
 * error, so it terminates the process.
 */
[[noreturn]] void wsPanic(const char *file, int line, const std::string &msg);

#define WS_PANIC(msg) ::wmstream::wsPanic(__FILE__, __LINE__, (msg))

#define WS_ASSERT(cond, msg)                                                 \
    do {                                                                     \
        if (!(cond))                                                         \
            WS_PANIC(std::string("assertion failed: ") + #cond + ": " +     \
                     (msg));                                                 \
    } while (0)

} // namespace wmstream

#endif // WMSTREAM_SUPPORT_DIAG_H
