/**
 * @file
 * Diagnostic reporting for the wmstream compiler.
 *
 * A DiagEngine collects errors and warnings with source positions. The
 * front end reports through it; callers inspect the collected messages
 * after a phase runs. Internal invariant violations use wsPanic(),
 * user-visible input errors use DiagEngine::error().
 */

#ifndef WMSTREAM_SUPPORT_DIAG_H
#define WMSTREAM_SUPPORT_DIAG_H

#include <cstdint>
#include <exception>
#include <string>
#include <vector>

namespace wmstream {

/** A position in a mini-C source buffer (1-based line and column). */
struct SourcePos
{
    int line = 0;
    int column = 0;

    bool valid() const { return line > 0; }
    std::string str() const;
};

/** Severity of a diagnostic message. */
enum class DiagLevel { Error, Warning, Note };

/** One diagnostic: severity, position, and message text. */
struct Diagnostic
{
    DiagLevel level;
    SourcePos pos;
    std::string message;

    std::string str() const;
};

/**
 * Collects diagnostics produced while processing one compilation unit.
 *
 * The engine never throws on user errors; phases check hasErrors() and
 * bail out. This mirrors the paper's compiler structure where the front
 * end is the only component that sees user input.
 */
class DiagEngine
{
  public:
    void error(SourcePos pos, std::string msg);
    void warning(SourcePos pos, std::string msg);
    void note(SourcePos pos, std::string msg);

    bool hasErrors() const { return numErrors_ > 0; }
    int errorCount() const { return numErrors_; }
    const std::vector<Diagnostic> &messages() const { return messages_; }

    /** All diagnostics rendered one per line (for tests and tools). */
    std::string str() const;

  private:
    std::vector<Diagnostic> messages_;
    int numErrors_ = 0;
};

/**
 * An internal invariant violation: always a compiler bug, never a
 * user error.
 *
 * Thrown by wsPanic()/WS_PANIC/WS_ASSERT. Library code never calls
 * std::exit or abort; the process-exit policy (exit code 70, see the
 * wmc exit-code table) lives only at the tool boundaries in tools/,
 * which catch this type in main(). Service-style embedders (the
 * src/serve batch runner) instead catch it per translation unit and
 * convert it into a typed failure record, so one panicking TU cannot
 * kill a batch of thousands.
 */
class InternalError : public std::exception
{
  public:
    InternalError(const char *file, int line, std::string msg);

    /** Full one-line rendering: "wmstream panic at FILE:LINE: MSG". */
    const char *what() const noexcept override { return what_.c_str(); }

    const std::string &message() const { return msg_; }
    const std::string &file() const { return file_; }
    int line() const { return line_; }

    /**
     * Stable dedup key "panic@FILE:LINE" (basename only), in the
     * spirit of wmsim::FaultReport::signature(): two panics from the
     * same assertion collapse to one signature regardless of the
     * formatted message contents.
     */
    std::string signature() const;

  private:
    std::string msg_;
    std::string file_; ///< basename of the throwing source file
    int line_;
    std::string what_;
};

/**
 * Cooperative cancellation of a compilation in flight (per-TU
 * deadline or resource budget; see driver::CompileOptions::cancel and
 * maxRtlInsts). Thrown by the driver at a pass boundary; `reason` is
 * a stable code: "deadline" or "rtl-budget".
 */
class CancelledError : public std::exception
{
  public:
    explicit CancelledError(std::string reason, std::string detail);

    const char *what() const noexcept override { return what_.c_str(); }
    const std::string &reason() const { return reason_; }

  private:
    std::string reason_;
    std::string what_;
};

/**
 * Report an internal invariant violation.
 *
 * Equivalent to gem5's panic() in intent — this is a compiler bug,
 * never a user error — but implemented as a throw of InternalError so
 * embedders can contain it; tools/ turn it into exit(70).
 */
[[noreturn]] void wsPanic(const char *file, int line, const std::string &msg);

#define WS_PANIC(msg) ::wmstream::wsPanic(__FILE__, __LINE__, (msg))

#define WS_ASSERT(cond, msg)                                                 \
    do {                                                                     \
        if (!(cond))                                                         \
            WS_PANIC(std::string("assertion failed: ") + #cond + ": " +     \
                     (msg));                                                 \
    } while (0)

} // namespace wmstream

#endif // WMSTREAM_SUPPORT_DIAG_H
