#include "support/thread_pool.h"

#include <atomic>

namespace wmstream::support {

ThreadPool::ThreadPool(int numThreads)
{
    if (numThreads < 1)
        numThreads = 1;
    workers_.reserve(static_cast<size_t>(numThreads));
    for (int i = 0; i < numThreads; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    wait();
    {
        std::lock_guard<std::mutex> lock(mu_);
        stop_ = true;
    }
    workCv_.notify_all();
    for (auto &t : workers_)
        t.join();
}

void
ThreadPool::submit(std::function<void()> job)
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        queue_.push_back(std::move(job));
    }
    workCv_.notify_one();
}

size_t
ThreadPool::cancelPending()
{
    std::deque<std::function<void()>> dropped;
    {
        std::lock_guard<std::mutex> lock(mu_);
        dropped.swap(queue_);
        // wait() may already be blocked on "queue empty and all
        // idle"; an empty queue with no active workers is now final.
        if (active_ == 0)
            idleCv_.notify_all();
    }
    // Destroy the dropped closures (and whatever shared state they
    // captured) outside the lock: a captured shared_ptr's destructor
    // may itself take locks or submit follow-up work.
    return dropped.size();
}

void
ThreadPool::wait()
{
    std::unique_lock<std::mutex> lock(mu_);
    idleCv_.wait(lock, [this] {
        return queue_.empty() && active_ == 0;
    });
}

void
ThreadPool::workerLoop()
{
    std::unique_lock<std::mutex> lock(mu_);
    for (;;) {
        workCv_.wait(lock, [this] {
            return stop_ || !queue_.empty();
        });
        if (stop_ && queue_.empty())
            return;
        auto job = std::move(queue_.front());
        queue_.pop_front();
        ++active_;
        lock.unlock();
        job();
        lock.lock();
        --active_;
        if (queue_.empty() && active_ == 0)
            idleCv_.notify_all();
    }
}

void
parallelFor(ThreadPool &pool, int64_t n,
            const std::function<void(int64_t)> &fn)
{
    if (n <= 0)
        return;
    // One shared claim counter, one chunk job per worker: jobs pull
    // indices until the range is exhausted, so slow indices do not
    // leave other workers idle. All state the jobs touch is shared,
    // never borrowed from this frame: a job can outlive this call by
    // the window between its last claim and its exit.
    struct State
    {
        std::atomic<int64_t> nextIndex{0};
        std::atomic<int64_t> done{0};
        int64_t n;
        std::function<void(int64_t)> fn;
        std::mutex mu;
        std::condition_variable cv;
    };
    auto st = std::make_shared<State>();
    st->n = n;
    st->fn = fn;

    int jobs = pool.numThreads();
    if (static_cast<int64_t>(jobs) > n)
        jobs = static_cast<int>(n);
    for (int j = 0; j < jobs; ++j) {
        pool.submit([st] {
            for (;;) {
                int64_t i = st->nextIndex.fetch_add(1);
                if (i >= st->n)
                    break;
                st->fn(i);
                if (st->done.fetch_add(1) + 1 == st->n) {
                    std::lock_guard<std::mutex> lock(st->mu);
                    st->cv.notify_all();
                }
            }
        });
    }
    std::unique_lock<std::mutex> lock(st->mu);
    st->cv.wait(lock, [&] { return st->done.load() >= st->n; });
}

} // namespace wmstream::support
