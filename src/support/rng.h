/**
 * @file
 * Seeded, splittable pseudo-random number generation.
 *
 * One PRNG implementation serves every randomized consumer in the
 * repo (the loop fuzz tests, the wmfuzz campaign runner, future
 * randomized benchmarks) so that campaigns are reproducible from a
 * single seed and the statistical quality is fixed in exactly one
 * place.
 *
 * Design:
 *  - the core generator is xoshiro256** (Blackman/Vigna), seeded
 *    through SplitMix64 so that adjacent or zero seeds still produce
 *    well-mixed state;
 *  - range() is exactly uniform (Lemire's multiply-shift with
 *    rejection), fixing the modulo bias of the old
 *    `next() % (hi - lo + 1)` in tests/loopfuzz_test.cc;
 *  - split(streamId) derives an independent child generator from
 *    (state, streamId). A campaign seeds one root Rng and splits one
 *    child per program index, so the program stream is identical
 *    regardless of how many worker threads consume it or in which
 *    order they run.
 *
 * An Rng instance is NOT thread-safe; give each worker its own
 * (usually via split()).
 */

#ifndef WMSTREAM_SUPPORT_RNG_H
#define WMSTREAM_SUPPORT_RNG_H

#include <cstdint>

namespace wmstream::support {

/** xoshiro256** generator with SplitMix64 seeding and splitting. */
class Rng
{
  public:
    /** Seed deterministically; any value (including 0) is fine. */
    explicit Rng(uint64_t seed);

    /** Next raw 64-bit value. */
    uint64_t next();

    /**
     * Uniform value in [0, bound). Exactly uniform (no modulo bias);
     * @p bound must be nonzero.
     */
    uint64_t nextBelow(uint64_t bound);

    /** Uniform int in [lo, hi], both inclusive; requires lo <= hi. */
    int range(int lo, int hi);

    /** Uniform bool. */
    bool flip();

    /**
     * Derive an independent child generator for @p streamId.
     * Deterministic in (this generator's seed, streamId) and does not
     * advance this generator, so callers can split children for
     * arbitrary ids in any order.
     */
    Rng split(uint64_t streamId) const;

  private:
    uint64_t s_[4];
};

} // namespace wmstream::support

#endif // WMSTREAM_SUPPORT_RNG_H
