/**
 * @file
 * A fixed-size worker thread pool with a shared FIFO work queue.
 *
 * The wmfuzz campaign runner is the first consumer: it submits one
 * job per generated program and calls wait() before reporting. The
 * pool is deliberately minimal — no futures, no priorities — because
 * every present use is "run N independent closures, then join".
 *
 * Thread-safety contract: submit() and wait() may be called from any
 * thread; jobs must synchronize their own access to shared state.
 * Jobs may submit further jobs. Exceptions escaping a job terminate
 * the process (the repo's compiler and simulators report failure
 * through result structs, never exceptions, so an escape is a bug).
 */

#ifndef WMSTREAM_SUPPORT_THREAD_POOL_H
#define WMSTREAM_SUPPORT_THREAD_POOL_H

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace wmstream::support {

class ThreadPool
{
  public:
    /** Start @p numThreads workers; values < 1 are clamped to 1. */
    explicit ThreadPool(int numThreads);

    /** Drains outstanding work (wait()), then joins the workers. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Enqueue @p job; returns immediately. */
    void submit(std::function<void()> job);

    /** Block until the queue is empty and every worker is idle. */
    void wait();

    int numThreads() const { return static_cast<int>(workers_.size()); }

  private:
    void workerLoop();

    std::vector<std::thread> workers_;
    std::deque<std::function<void()>> queue_;
    std::mutex mu_;
    std::condition_variable workCv_; ///< signals workers: job or stop
    std::condition_variable idleCv_; ///< signals wait(): all drained
    int active_ = 0;                 ///< jobs currently executing
    bool stop_ = false;
};

/**
 * Run fn(0) .. fn(n-1) on the pool and block until all complete.
 * Indices are claimed dynamically, so uneven job costs still balance.
 */
void parallelFor(ThreadPool &pool, int64_t n,
                 const std::function<void(int64_t)> &fn);

} // namespace wmstream::support

#endif // WMSTREAM_SUPPORT_THREAD_POOL_H
