/**
 * @file
 * A fixed-size worker thread pool with a shared FIFO work queue.
 *
 * The wmfuzz campaign runner is the first consumer: it submits one
 * job per generated program and calls wait() before reporting. The
 * pool is deliberately minimal — no futures, no priorities — because
 * every present use is "run N independent closures, then join".
 *
 * Thread-safety contract: submit(), cancelPending(), and wait() may
 * be called from any thread, including from inside a job. Jobs must
 * synchronize their own access to shared state. Jobs may submit
 * further jobs. Exceptions escaping a job terminate the process:
 * callers that run throwing code (the serve batch runner compiles
 * TUs that may raise InternalError) must catch inside the job and
 * report through their result slots.
 *
 * Early-abort discipline (serve --fail-fast): cancelPending() drops
 * every queued-but-unstarted job and returns how many were dropped,
 * so an aborting batch can account for the jobs that will never run
 * and then wait() deterministically for the in-flight ones to
 * drain. Jobs must own their shared state via shared_ptr (as
 * parallelFor does): a worker can still be inside a job after the
 * submitting frame returned, and must never touch a result slot the
 * caller has destroyed.
 */

#ifndef WMSTREAM_SUPPORT_THREAD_POOL_H
#define WMSTREAM_SUPPORT_THREAD_POOL_H

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace wmstream::support {

class ThreadPool
{
  public:
    /** Start @p numThreads workers; values < 1 are clamped to 1. */
    explicit ThreadPool(int numThreads);

    /** Drains outstanding work (wait()), then joins the workers. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Enqueue @p job; returns immediately. */
    void submit(std::function<void()> job);

    /**
     * Drop every queued-but-unstarted job; jobs already executing
     * finish normally. Returns the number of jobs dropped. Dropped
     * closures are destroyed under no lock held by workers, so a
     * batch abort can release per-job state deterministically.
     */
    size_t cancelPending();

    /** Block until the queue is empty and every worker is idle. */
    void wait();

    int numThreads() const { return static_cast<int>(workers_.size()); }

  private:
    void workerLoop();

    std::vector<std::thread> workers_;
    std::deque<std::function<void()>> queue_;
    std::mutex mu_;
    std::condition_variable workCv_; ///< signals workers: job or stop
    std::condition_variable idleCv_; ///< signals wait(): all drained
    int active_ = 0;                 ///< jobs currently executing
    bool stop_ = false;
};

/**
 * Run fn(0) .. fn(n-1) on the pool and block until all complete.
 * Indices are claimed dynamically, so uneven job costs still balance.
 */
void parallelFor(ThreadPool &pool, int64_t n,
                 const std::function<void(int64_t)> &fn);

} // namespace wmstream::support

#endif // WMSTREAM_SUPPORT_THREAD_POOL_H
