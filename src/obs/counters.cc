#include "obs/counters.h"

namespace wmstream::obs {

uint64_t &
CounterRegistry::counter(const std::string &name)
{
    auto it = index_.find(name);
    if (it != index_.end())
        return entries_[it->second].second;
    index_.emplace(name, entries_.size());
    entries_.emplace_back(name, 0);
    return entries_.back().second;
}

uint64_t
CounterRegistry::get(const std::string &name) const
{
    auto it = index_.find(name);
    return it == index_.end() ? 0 : entries_[it->second].second;
}

bool
CounterRegistry::has(const std::string &name) const
{
    return index_.count(name) != 0;
}

uint64_t
CounterRegistry::sumPrefix(const std::string &prefix) const
{
    uint64_t sum = 0;
    for (const auto &[name, v] : entries_) {
        if (name == prefix ||
                (name.size() > prefix.size() + 1 &&
                 name.compare(0, prefix.size(), prefix) == 0 &&
                 name[prefix.size()] == '.')) {
            sum += v;
        }
    }
    return sum;
}

void
CounterRegistry::writeJson(JsonWriter &w) const
{
    w.beginObject();
    for (const auto &[name, v] : entries_)
        w.field(name, v);
    w.endObject();
}

} // namespace wmstream::obs
