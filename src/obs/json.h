/**
 * @file
 * Minimal streaming JSON writer for the observability layer.
 *
 * Everything machine-readable this repo emits (stats files, Chrome
 * traces, bench tables) funnels through this one writer so escaping
 * and number formatting are correct in exactly one place. The writer
 * is a push API over an in-memory buffer: begin/end containers, keys,
 * scalar values; commas and nesting are managed by an internal stack,
 * so callers cannot produce structurally invalid JSON (mismatched
 * containers panic via WS_ASSERT in debug use).
 */

#ifndef WMSTREAM_OBS_JSON_H
#define WMSTREAM_OBS_JSON_H

#include <cstdint>
#include <string>
#include <vector>

namespace wmstream::obs {

/** Escape @p s for inclusion inside a JSON string literal (no quotes). */
std::string jsonEscape(const std::string &s);

/** Push-style JSON document builder. */
class JsonWriter
{
  public:
    JsonWriter() = default;

    /** @name Containers */
    /// @{
    void beginObject();
    void endObject();
    void beginArray();
    void endArray();
    /// @}

    /** Emit an object key; the next value call supplies its value. */
    void key(const std::string &k);

    /** @name Scalar values (as the next array element or key's value) */
    /// @{
    void value(const std::string &s);
    void value(const char *s);
    void value(int64_t v);
    void value(uint64_t v);
    void value(int v) { value(static_cast<int64_t>(v)); }
    void value(double v);
    void value(bool v);
    void valueNull();
    /// @}

    /** @name key+value in one call */
    /// @{
    template <typename T>
    void field(const std::string &k, T v)
    {
        key(k);
        value(v);
    }
    /// @}

    /** Finished document. All containers must be closed. */
    const std::string &str() const;

    /** True once at least one container or value has been emitted. */
    bool empty() const { return out_.empty(); }

  private:
    void preValue();

    enum class Ctx : uint8_t { Object, Array };
    struct Level
    {
        Ctx ctx;
        bool first = true;
        bool keyPending = false;
    };
    std::string out_;
    std::vector<Level> stack_;
};

} // namespace wmstream::obs

#endif // WMSTREAM_OBS_JSON_H
