#include "obs/critpath.h"

#include <algorithm>
#include <map>
#include <tuple>

#include "support/diag.h"

namespace wmstream::obs {

CritPath::CritPath(size_t maxEvents) : maxEvents_(maxEvents)
{
    causes_.push_back("start"); // reserved id kCauseStart
    events_.reserve(1u << 12);
    deps_.reserve(1u << 13);
}

uint8_t
CritPath::unit(const std::string &name)
{
    for (size_t i = 0; i < units_.size(); ++i)
        if (units_[i] == name)
            return static_cast<uint8_t>(i);
    WS_ASSERT(units_.size() < 255, "too many critpath units");
    units_.push_back(name);
    return static_cast<uint8_t>(units_.size() - 1);
}

uint8_t
CritPath::cause(const std::string &name)
{
    for (size_t i = 0; i < causes_.size(); ++i)
        if (causes_[i] == name)
            return static_cast<uint8_t>(i);
    WS_ASSERT(causes_.size() < 255, "too many critpath causes");
    causes_.push_back(name);
    return static_cast<uint8_t>(causes_.size() - 1);
}

int
CritPath::queue(const std::string &name, int depth, bool dataFifo)
{
    for (size_t i = 0; i < queues_.size(); ++i)
        if (queues_[i].name == name)
            return static_cast<int>(i);
    queues_.push_back(Queue{name, depth, dataFifo, 0, {}});
    return static_cast<int>(queues_.size() - 1);
}

int32_t
CritPath::event(uint64_t cycle, uint8_t u, int32_t loop, uint8_t waitCause)
{
    if (!recording_)
        return -1;
    if (events_.size() >= maxEvents_) {
        truncated_ = true;
        recording_ = false;
        return -1;
    }
    Event e;
    e.cycle = cycle;
    e.firstDep = static_cast<uint32_t>(deps_.size());
    e.nDeps = 0;
    e.unit = u;
    e.waitCause = waitCause;
    e.loop = loop;
    events_.push_back(e);
    return static_cast<int32_t>(events_.size() - 1);
}

void
CritPath::dep(int32_t pred, uint8_t c, float latency)
{
    if (!recording_ || events_.empty() || pred < 0)
        return;
    WS_ASSERT(pred < static_cast<int32_t>(events_.size()) - 1,
              "critpath dep must name an older event");
    Dep d;
    d.pred = pred;
    d.ordinal = 0;
    d.latency = latency;
    d.queue = -1;
    d.cause = c;
    deps_.push_back(d);
    ++events_.back().nDeps;
}

void
CritPath::pushDep(int q, uint8_t c, float latency)
{
    if (!recording_ || events_.empty())
        return;
    Dep d;
    d.pred = -1;
    d.ordinal = queues_[static_cast<size_t>(q)].pushes++;
    d.latency = latency;
    d.queue = static_cast<int16_t>(q);
    d.cause = c;
    deps_.push_back(d);
    ++events_.back().nDeps;
}

void
CritPath::pop(int q, int32_t consumer)
{
    if (!recording_)
        return;
    queues_[static_cast<size_t>(q)].pops.push_back(consumer);
}

uint64_t
CritPath::eventCycle(int32_t ev) const
{
    WS_ASSERT(ev >= 0 && static_cast<size_t>(ev) < events_.size(),
              "critpath event id out of range");
    return events_[static_cast<size_t>(ev)].cycle;
}

int32_t
CritPath::resolveCapacity(const Dep &d, int extraDataDepth) const
{
    const Queue &q = queues_[static_cast<size_t>(d.queue)];
    uint32_t eff = static_cast<uint32_t>(
        q.depth + (q.dataFifo ? extraDataDepth : 0));
    if (d.ordinal < eff)
        return -1; // the queue had never been full when this pushed
    uint32_t k = d.ordinal - eff;
    if (k >= q.pops.size())
        return -1; // freeing pop lost (e.g. recording truncated)
    return q.pops[k];
}

CritAnalysis
CritPath::analyze() const
{
    CritAnalysis out;
    if (truncated_ || end_ < 0 ||
        static_cast<size_t>(end_) >= events_.size())
        return out;
    out.valid = true;
    out.totalCycles = events_[static_cast<size_t>(end_)].cycle;

    // (unit, cause, loop) -> (cycles, edges)
    std::map<std::tuple<uint8_t, uint8_t, int32_t>,
             std::pair<uint64_t, uint64_t>>
        buckets;

    int32_t cur = end_;
    while (true) {
        const Event &e = events_[static_cast<size_t>(cur)];
        int32_t best = -1;
        uint64_t bestCycle = 0;
        uint8_t bestCause = kCauseStart;
        for (uint32_t i = 0; i < e.nDeps; ++i) {
            const Dep &d = deps_[e.firstDep + i];
            int32_t pred =
                d.queue >= 0 ? resolveCapacity(d, 0) : d.pred;
            if (pred < 0)
                continue;
            uint64_t pc = events_[static_cast<size_t>(pred)].cycle;
            if (best < 0 || pc > bestCycle) {
                best = pred;
                bestCycle = pc;
                bestCause = d.cause;
            }
        }
        if (best < 0) {
            // Root: its whole start-up interval (0, cycle] plus the
            // degenerate cycle-0 case lands on the "start" cause.
            auto &b = buckets[{e.unit, kCauseStart, e.loop}];
            b.first += e.cycle;
            b.second += 1;
            out.attributed += e.cycle;
            break;
        }
        WS_ASSERT(best < cur, "critpath binding dep not older");
        WS_ASSERT(bestCycle <= e.cycle,
                  "critpath binding dep completes in the future");
        uint64_t gap = e.cycle - bestCycle;
        uint8_t cause = e.waitCause ? e.waitCause : bestCause;
        auto &b = buckets[{e.unit, cause, e.loop}];
        b.first += gap;
        b.second += 1;
        out.attributed += gap;
        ++out.pathLength;
        cur = best;
    }

    out.rows.reserve(buckets.size());
    for (const auto &kv : buckets) {
        CritAttrRow r;
        r.unit = std::get<0>(kv.first);
        r.cause = std::get<1>(kv.first);
        r.loop = std::get<2>(kv.first);
        r.cycles = kv.second.first;
        r.edges = kv.second.second;
        out.rows.push_back(r);
    }
    std::stable_sort(out.rows.begin(), out.rows.end(),
                     [](const CritAttrRow &a, const CritAttrRow &b) {
                         return a.cycles > b.cycles;
                     });
    return out;
}

double
CritPath::replay(const CritScenario &s) const
{
    if (truncated_ || end_ < 0 ||
        static_cast<size_t>(end_) >= events_.size())
        return 0.0;
    std::vector<double> scale(causes_.size(), 1.0);
    for (const auto &cs : s.causeScales)
        for (size_t i = 0; i < causes_.size(); ++i)
            if (causes_[i] == cs.first)
                scale[i] = cs.second;
    std::vector<double> t(events_.size(), 0.0);
    for (size_t i = 0; i < events_.size(); ++i) {
        const Event &e = events_[i];
        double ti = 0.0;
        for (uint32_t j = 0; j < e.nDeps; ++j) {
            const Dep &d = deps_[e.firstDep + j];
            int32_t pred = d.queue >= 0
                               ? resolveCapacity(d, s.extraDataFifoDepth)
                               : d.pred;
            if (pred < 0)
                continue;
            WS_ASSERT(static_cast<size_t>(pred) < i,
                      "critpath replay dep not older");
            double c = t[static_cast<size_t>(pred)] +
                       static_cast<double>(d.latency) * scale[d.cause];
            if (c > ti)
                ti = c;
        }
        t[i] = ti;
    }
    return t[static_cast<size_t>(end_)];
}

} // namespace wmstream::obs
