#include "obs/json_parse.h"

#include <cctype>
#include <cstdlib>
#include <sstream>

namespace wmstream::obs {

const JsonValue *JsonValue::get(const std::string &key) const
{
    if (kind != Kind::Object)
        return nullptr;
    for (const auto &m : members)
        if (m.first == key)
            return &m.second;
    return nullptr;
}

int64_t JsonValue::getInt(const std::string &key, int64_t dflt) const
{
    const JsonValue *v = get(key);
    if (!v || v->kind != Kind::Number)
        return dflt;
    return v->isInt ? v->intVal : static_cast<int64_t>(v->numVal);
}

double JsonValue::getNum(const std::string &key, double dflt) const
{
    const JsonValue *v = get(key);
    return (v && v->kind == Kind::Number) ? v->numVal : dflt;
}

std::string JsonValue::getStr(const std::string &key,
                              const std::string &dflt) const
{
    const JsonValue *v = get(key);
    return (v && v->kind == Kind::String) ? v->strVal : dflt;
}

namespace {

class Parser
{
  public:
    Parser(const std::string &text) : s_(text) {}

    bool parse(JsonValue &out, std::string &error)
    {
        skipWs();
        if (!parseValue(out))
            return fail(error);
        skipWs();
        if (pos_ != s_.size()) {
            err_ = "trailing characters after document";
            return fail(error);
        }
        return true;
    }

  private:
    bool fail(std::string &error)
    {
        if (err_.empty())
            return true;
        std::ostringstream os;
        os << "offset " << pos_ << ": " << err_;
        error = os.str();
        return false;
    }

    void skipWs()
    {
        while (pos_ < s_.size() &&
               (s_[pos_] == ' ' || s_[pos_] == '\t' || s_[pos_] == '\n' ||
                s_[pos_] == '\r'))
            ++pos_;
    }

    bool eat(char c)
    {
        if (pos_ < s_.size() && s_[pos_] == c) {
            ++pos_;
            return true;
        }
        return false;
    }

    bool expect(char c)
    {
        if (eat(c))
            return true;
        err_ = std::string("expected '") + c + "'";
        return false;
    }

    bool literal(const char *word, size_t n)
    {
        if (s_.compare(pos_, n, word) != 0) {
            err_ = std::string("bad literal, expected ") + word;
            return false;
        }
        pos_ += n;
        return true;
    }

    bool parseValue(JsonValue &out)
    {
        if (pos_ >= s_.size()) {
            err_ = "unexpected end of input";
            return false;
        }
        switch (s_[pos_]) {
        case '{':
            return parseObject(out);
        case '[':
            return parseArray(out);
        case '"':
            out.kind = JsonValue::Kind::String;
            return parseString(out.strVal);
        case 't':
            out.kind = JsonValue::Kind::Bool;
            out.boolVal = true;
            return literal("true", 4);
        case 'f':
            out.kind = JsonValue::Kind::Bool;
            out.boolVal = false;
            return literal("false", 5);
        case 'n':
            out.kind = JsonValue::Kind::Null;
            return literal("null", 4);
        default:
            return parseNumber(out);
        }
    }

    bool parseObject(JsonValue &out)
    {
        out.kind = JsonValue::Kind::Object;
        ++pos_; // '{'
        skipWs();
        if (eat('}'))
            return true;
        while (true) {
            skipWs();
            std::string key;
            if (pos_ >= s_.size() || s_[pos_] != '"') {
                err_ = "expected object key string";
                return false;
            }
            if (!parseString(key))
                return false;
            skipWs();
            if (!expect(':'))
                return false;
            skipWs();
            JsonValue v;
            if (!parseValue(v))
                return false;
            out.members.emplace_back(std::move(key), std::move(v));
            skipWs();
            if (eat(','))
                continue;
            return expect('}');
        }
    }

    bool parseArray(JsonValue &out)
    {
        out.kind = JsonValue::Kind::Array;
        ++pos_; // '['
        skipWs();
        if (eat(']'))
            return true;
        while (true) {
            skipWs();
            JsonValue v;
            if (!parseValue(v))
                return false;
            out.arr.push_back(std::move(v));
            skipWs();
            if (eat(','))
                continue;
            return expect(']');
        }
    }

    static void appendUtf8(std::string &out, unsigned cp)
    {
        if (cp < 0x80) {
            out += static_cast<char>(cp);
        } else if (cp < 0x800) {
            out += static_cast<char>(0xC0 | (cp >> 6));
            out += static_cast<char>(0x80 | (cp & 0x3F));
        } else if (cp < 0x10000) {
            out += static_cast<char>(0xE0 | (cp >> 12));
            out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (cp & 0x3F));
        } else {
            out += static_cast<char>(0xF0 | (cp >> 18));
            out += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
            out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (cp & 0x3F));
        }
    }

    bool parseHex4(unsigned &out)
    {
        if (pos_ + 4 > s_.size()) {
            err_ = "truncated \\u escape";
            return false;
        }
        out = 0;
        for (int i = 0; i < 4; ++i) {
            char c = s_[pos_++];
            out <<= 4;
            if (c >= '0' && c <= '9')
                out |= static_cast<unsigned>(c - '0');
            else if (c >= 'a' && c <= 'f')
                out |= static_cast<unsigned>(c - 'a' + 10);
            else if (c >= 'A' && c <= 'F')
                out |= static_cast<unsigned>(c - 'A' + 10);
            else {
                err_ = "bad hex digit in \\u escape";
                return false;
            }
        }
        return true;
    }

    bool parseString(std::string &out)
    {
        ++pos_; // opening quote
        out.clear();
        while (true) {
            if (pos_ >= s_.size()) {
                err_ = "unterminated string";
                return false;
            }
            char c = s_[pos_++];
            if (c == '"')
                return true;
            if (c != '\\') {
                out += c;
                continue;
            }
            if (pos_ >= s_.size()) {
                err_ = "unterminated escape";
                return false;
            }
            char e = s_[pos_++];
            switch (e) {
            case '"': out += '"'; break;
            case '\\': out += '\\'; break;
            case '/': out += '/'; break;
            case 'b': out += '\b'; break;
            case 'f': out += '\f'; break;
            case 'n': out += '\n'; break;
            case 'r': out += '\r'; break;
            case 't': out += '\t'; break;
            case 'u': {
                unsigned cp;
                if (!parseHex4(cp))
                    return false;
                // Surrogate pair: \uD800-\uDBFF followed by \uDC00-\uDFFF.
                if (cp >= 0xD800 && cp <= 0xDBFF &&
                    pos_ + 1 < s_.size() && s_[pos_] == '\\' &&
                    s_[pos_ + 1] == 'u') {
                    pos_ += 2;
                    unsigned lo;
                    if (!parseHex4(lo))
                        return false;
                    if (lo >= 0xDC00 && lo <= 0xDFFF)
                        cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                }
                appendUtf8(out, cp);
                break;
            }
            default:
                err_ = "bad escape character";
                return false;
            }
        }
    }

    bool parseNumber(JsonValue &out)
    {
        size_t start = pos_;
        if (eat('-')) {
        }
        while (pos_ < s_.size() && std::isdigit(
                   static_cast<unsigned char>(s_[pos_])))
            ++pos_;
        bool isInt = true;
        if (pos_ < s_.size() && s_[pos_] == '.') {
            isInt = false;
            ++pos_;
            while (pos_ < s_.size() && std::isdigit(
                       static_cast<unsigned char>(s_[pos_])))
                ++pos_;
        }
        if (pos_ < s_.size() && (s_[pos_] == 'e' || s_[pos_] == 'E')) {
            isInt = false;
            ++pos_;
            if (pos_ < s_.size() && (s_[pos_] == '+' || s_[pos_] == '-'))
                ++pos_;
            while (pos_ < s_.size() && std::isdigit(
                       static_cast<unsigned char>(s_[pos_])))
                ++pos_;
        }
        if (pos_ == start || (pos_ == start + 1 && s_[start] == '-')) {
            err_ = "bad number";
            return false;
        }
        std::string tok = s_.substr(start, pos_ - start);
        out.kind = JsonValue::Kind::Number;
        out.numVal = std::strtod(tok.c_str(), nullptr);
        out.isInt = isInt;
        if (isInt)
            out.intVal = std::strtoll(tok.c_str(), nullptr, 10);
        return true;
    }

    const std::string &s_;
    size_t pos_ = 0;
    std::string err_;
};

} // namespace

bool parseJson(const std::string &text, JsonValue &out, std::string &error)
{
    Parser p(text);
    return p.parse(out, error);
}

} // namespace wmstream::obs
