/**
 * @file
 * Per-pass compiler profiling: wall time, RTL instruction-count
 * deltas, and pass-specific counters.
 *
 * The driver wraps each optimizer phase in PassProfiler::measure().
 * Profiles with the same pass name merge (the driver runs each pass
 * once per function), so a profile row reads "this pass, over the
 * whole compilation, took X ms and changed the instruction count by
 * D". When the profiler is disabled, measure() runs the body with no
 * clock reads at all — profiling off must cost nothing.
 */

#ifndef WMSTREAM_OBS_PASS_PROFILER_H
#define WMSTREAM_OBS_PASS_PROFILER_H

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "obs/json.h"

namespace wmstream::obs {

/** Monotonic wall-clock stopwatch. */
class PhaseTimer
{
  public:
    PhaseTimer() : start_(Clock::now()) {}
    void reset() { start_ = Clock::now(); }
    double elapsedMs() const
    {
        return std::chrono::duration<double, std::milli>(Clock::now() -
                                                         start_)
            .count();
    }

  private:
    using Clock = std::chrono::steady_clock;
    Clock::time_point start_;
};

/** Accumulated measurements for one named compiler pass. */
struct PassProfile
{
    std::string name;
    int calls = 0;
    double wallMs = 0.0;
    int64_t instsBefore = 0;  ///< summed over calls
    int64_t instsAfter = 0;   ///< summed over calls
    /** Pass-specific counters (streams emitted, recurrences, ...). */
    std::vector<std::pair<std::string, int64_t>> counters;

    int64_t instsDelta() const { return instsAfter - instsBefore; }
};

/** Collects PassProfiles across a compilation. */
class PassProfiler
{
  public:
    explicit PassProfiler(bool enabled = false) : enabled_(enabled) {}

    bool enabled() const { return enabled_; }

    /**
     * Run @p body as pass @p name. @p countInsts is called before and
     * after the body (only when enabled) to record the RTL
     * instruction-count delta.
     */
    template <typename CountFn, typename BodyFn>
    void
    measure(const std::string &name, CountFn &&countInsts, BodyFn &&body)
    {
        if (!enabled_) {
            body();
            return;
        }
        int64_t before = countInsts();
        PhaseTimer t;
        body();
        double ms = t.elapsedMs();
        PassProfile &p = profile(name);
        ++p.calls;
        p.wallMs += ms;
        p.instsBefore += before;
        p.instsAfter += countInsts();
    }

    /** Add @p v to counter @p key of pass @p name (no-op if disabled). */
    void addCounter(const std::string &name, const std::string &key,
                    int64_t v);

    const std::vector<PassProfile> &profiles() const { return profiles_; }

    /** Human-readable table for `wmc --profile-passes`. */
    std::string table() const;

    /** JSON array of profile objects, in pass-execution order. */
    void writeJson(JsonWriter &w) const;

  private:
    PassProfile &profile(const std::string &name);

    bool enabled_;
    std::vector<PassProfile> profiles_;
};

/** Render an externally stored profile list (same format as table()). */
std::string passProfileTable(const std::vector<PassProfile> &profiles);
void writePassProfilesJson(JsonWriter &w,
                           const std::vector<PassProfile> &profiles);

} // namespace wmstream::obs

#endif // WMSTREAM_OBS_PASS_PROFILER_H
