#include "obs/trace.h"

#include <cstdio>

namespace wmstream::obs {

int
TraceWriter::track(const std::string &name)
{
    int tid = nextTid_++;
    Event e;
    e.ph = Ph::Meta;
    e.tid = tid;
    e.name = "thread_name";
    e.ts = 0;
    e.dur = 0;
    e.value = 0;
    e.arg = name;
    events_.push_back(std::move(e));
    return tid;
}

void
TraceWriter::counter(const std::string &name, uint64_t ts, double value)
{
    Event e;
    e.ph = Ph::Counter;
    e.tid = 0;
    e.name = name;
    e.ts = ts;
    e.dur = 0;
    e.value = value;
    events_.push_back(std::move(e));
}

void
TraceWriter::complete(int tid, const std::string &name, uint64_t ts,
                      uint64_t dur)
{
    Event e;
    e.ph = Ph::Complete;
    e.tid = tid;
    e.name = name;
    e.ts = ts;
    e.dur = dur;
    e.value = 0;
    events_.push_back(std::move(e));
}

void
TraceWriter::instant(int tid, const std::string &name, uint64_t ts)
{
    Event e;
    e.ph = Ph::Instant;
    e.tid = tid;
    e.name = name;
    e.ts = ts;
    e.dur = 0;
    e.value = 0;
    events_.push_back(std::move(e));
}

std::string
TraceWriter::str() const
{
    JsonWriter w;
    w.beginObject();
    w.field("displayTimeUnit", "ns");
    w.key("traceEvents");
    w.beginArray();
    for (const Event &e : events_) {
        w.beginObject();
        w.field("pid", static_cast<int64_t>(1));
        w.field("tid", static_cast<int64_t>(e.tid));
        switch (e.ph) {
          case Ph::Counter:
            w.field("ph", "C");
            w.field("name", e.name);
            w.field("ts", e.ts);
            w.key("args");
            w.beginObject();
            w.field("value", e.value);
            w.endObject();
            break;
          case Ph::Complete:
            w.field("ph", "X");
            w.field("name", e.name);
            w.field("ts", e.ts);
            w.field("dur", e.dur);
            break;
          case Ph::Instant:
            w.field("ph", "i");
            w.field("s", "t");
            w.field("name", e.name);
            w.field("ts", e.ts);
            break;
          case Ph::Meta:
            w.field("ph", "M");
            w.field("name", e.name);
            w.key("args");
            w.beginObject();
            w.field("name", e.arg);
            w.endObject();
            break;
        }
        w.endObject();
    }
    w.endArray();
    w.endObject();
    return w.str();
}

bool
TraceWriter::writeFile(const std::string &path) const
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f)
        return false;
    std::string doc = str();
    size_t n = std::fwrite(doc.data(), 1, doc.size(), f);
    bool ok = n == doc.size();
    ok = std::fclose(f) == 0 && ok;
    return ok;
}

} // namespace wmstream::obs
