#include "obs/pass_profiler.h"

#include "support/str.h"

namespace wmstream::obs {

PassProfile &
PassProfiler::profile(const std::string &name)
{
    for (PassProfile &p : profiles_)
        if (p.name == name)
            return p;
    profiles_.push_back({});
    profiles_.back().name = name;
    return profiles_.back();
}

void
PassProfiler::addCounter(const std::string &name, const std::string &key,
                         int64_t v)
{
    if (!enabled_)
        return;
    PassProfile &p = profile(name);
    for (auto &[k, val] : p.counters)
        if (k == key) {
            val += v;
            return;
        }
    p.counters.emplace_back(key, v);
}

std::string
PassProfiler::table() const
{
    return passProfileTable(profiles_);
}

void
PassProfiler::writeJson(JsonWriter &w) const
{
    writePassProfilesJson(w, profiles_);
}

std::string
passProfileTable(const std::vector<PassProfile> &profiles)
{
    std::string out = strFormat("%-22s %5s %10s %8s %8s %7s  %s\n",
                                "pass", "calls", "wall(ms)", "insts<",
                                "insts>", "delta", "counters");
    double totalMs = 0;
    for (const PassProfile &p : profiles) {
        std::string extra;
        for (const auto &[k, v] : p.counters)
            extra += strFormat("%s%s=%lld", extra.empty() ? "" : " ",
                               k.c_str(), static_cast<long long>(v));
        out += strFormat("%-22s %5d %10.3f %8lld %8lld %+7lld  %s\n",
                         p.name.c_str(), p.calls, p.wallMs,
                         static_cast<long long>(p.instsBefore),
                         static_cast<long long>(p.instsAfter),
                         static_cast<long long>(p.instsDelta()),
                         extra.c_str());
        totalMs += p.wallMs;
    }
    out += strFormat("%-22s %5s %10.3f\n", "total", "", totalMs);
    return out;
}

void
writePassProfilesJson(JsonWriter &w,
                      const std::vector<PassProfile> &profiles)
{
    w.beginArray();
    for (const PassProfile &p : profiles) {
        w.beginObject();
        w.field("name", p.name);
        w.field("calls", static_cast<int64_t>(p.calls));
        w.field("wall_ms", p.wallMs);
        w.field("insts_before", p.instsBefore);
        w.field("insts_after", p.instsAfter);
        w.field("insts_delta", p.instsDelta());
        w.key("counters");
        w.beginObject();
        for (const auto &[k, v] : p.counters)
            w.field(k, v);
        w.endObject();
        w.endObject();
    }
    w.endArray();
}

} // namespace wmstream::obs
