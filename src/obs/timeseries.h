/**
 * @file
 * Flight-recorder time series: ring-buffered interval sampling over
 * fixed simulated-cycle windows.
 *
 * End-of-run aggregates show *that* a unit stalled; this sampler
 * records *when*. The producer (the cycle simulator) declares a fixed
 * set of named channels up front and, once per cycle, adds counts to
 * the window covering the current cycle. Every channel is a plain sum
 * over the window — event counts (instructions executed, stall
 * cycles) and level sums (FIFO occupancy sampled once per cycle, so
 * mean occupancy = sum / window cycles) alike — which is what makes
 * the two core invariants hold by construction:
 *
 *  - channel totals over all windows equal the end-of-run aggregate
 *    counters (asserted by tests and `wmreport --timeline`), and
 *  - decimation is exact: merging two adjacent windows adds their
 *    sums, losing resolution but never mass.
 *
 * Memory stays bounded on arbitrarily long runs by adaptive
 * decimation: when the closed-window count reaches the configured
 * cap, adjacent pairs merge and the window span doubles. A 50M-cycle
 * run with a 1024-cycle initial window and a 512-window cap ends at a
 * 131072-cycle span after seven decimations — still 380+ points of
 * phase resolution at a fixed ~300 KB of storage.
 */

#ifndef WMSTREAM_OBS_TIMESERIES_H
#define WMSTREAM_OBS_TIMESERIES_H

#include <cstdint>
#include <string>
#include <vector>

#include "obs/json.h"

namespace wmstream::obs {

/** Interval sampler over fixed simulated-cycle windows. */
class TimeSeries
{
  public:
    /**
     * @p channelNames fixes the channel set and its order for the
     * lifetime of the series. @p windowCycles is the initial window
     * span (must be > 0); @p maxWindows caps memory and must be even
     * (it is rounded up) so decimation can merge exact pairs.
     */
    explicit TimeSeries(std::vector<std::string> channelNames,
                        uint64_t windowCycles = 1024,
                        size_t maxWindows = 512);

    size_t channels() const { return names_.size(); }
    const std::vector<std::string> &channelNames() const
    {
        return names_;
    }
    /** Index of channel @p name, or -1 when unknown. */
    int channelIndex(const std::string &name) const;

    /** Current window span; doubles on every decimation. */
    uint64_t windowCycles() const { return span_; }
    uint64_t initialWindowCycles() const { return initialSpan_; }
    size_t maxWindows() const { return maxWindows_; }
    /** How many pair-merges have happened (0 = full resolution). */
    int decimations() const { return decimations_; }

    /**
     * Advance simulated time to @p cycle (monotone; the producer
     * calls this once per cycle before its add() calls). Closes every
     * window whose span @p cycle has passed, decimating when the
     * closed count reaches the cap.
     */
    void advanceTo(uint64_t cycle);

    /** Add @p v to channel @p c of the current window. */
    void add(size_t c, uint64_t v = 1)
    {
        cur_[c] += v;
    }

    /**
     * Close the final (possibly partial) window so it covers exactly
     * [lastBoundary, @p totalCycles). Call once, after the run; a
     * zero-cycle run produces zero windows.
     */
    void finish(uint64_t totalCycles);

    /** One closed window: [start, start+cycles) and its sums. */
    struct Window
    {
        uint64_t start = 0;
        uint64_t cycles = 0;
        std::vector<uint64_t> counts; ///< parallel to channelNames()
    };
    const std::vector<Window> &windows() const { return windows_; }

    /** Sum of channel @p c over every closed window. */
    uint64_t channelTotal(size_t c) const;
    /** Sum of window spans (equals total cycles after finish()). */
    uint64_t totalCycles() const;

    /**
     * One schema_version'd document:
     * {"schema_version":1, "kind":"timeseries", "window_cycles":W,
     *  "decimations":D, "channels":[names...],
     *  "samples":[{"start":..,"cycles":..,"counts":[..]}, ...]}
     */
    void writeJson(JsonWriter &w) const;

  private:
    void closeWindow(uint64_t cycles);
    void decimate();

    std::vector<std::string> names_;
    uint64_t initialSpan_;
    uint64_t span_;
    size_t maxWindows_;
    int decimations_ = 0;
    uint64_t curStart_ = 0;        ///< first cycle of the open window
    std::vector<uint64_t> cur_;    ///< open-window accumulators
    std::vector<Window> windows_;  ///< closed windows
    bool finished_ = false;
};

} // namespace wmstream::obs

#endif // WMSTREAM_OBS_TIMESERIES_H
