#include "obs/remarks.h"

#include <sstream>

namespace wmstream::obs {

const char *remarkVerdictName(RemarkVerdict v)
{
    return v == RemarkVerdict::Applied ? "applied" : "missed";
}

Remark &Remark::arg(std::string name, std::string value)
{
    args.push_back({std::move(name), std::move(value)});
    return *this;
}

Remark &Remark::arg(std::string name, int64_t value)
{
    args.push_back({std::move(name), std::to_string(value)});
    return *this;
}

std::string Remark::str() const
{
    std::ostringstream os;
    os << loc.str() << ": " << pass << " " << remarkVerdictName(verdict)
       << ": " << reason;
    if (loopId >= 0)
        os << " [loop " << loopId << "]";
    for (const RemarkArg &a : args)
        os << " " << a.name << "=" << a.value;
    return os.str();
}

int RemarkCollector::loopId(const std::string &function,
                            const std::string &header, SourcePos loc)
{
    for (LoopRecord &l : loops_) {
        if (l.function == function && l.header == header) {
            if (loc.valid() && !l.loc.valid())
                l.loc = loc;
            return l.id;
        }
    }
    LoopRecord rec;
    rec.id = static_cast<int>(loops_.size());
    rec.function = function;
    rec.header = header;
    rec.loc = loc;
    loops_.push_back(rec);
    return rec.id;
}

static bool sameRemark(const Remark &a, const Remark &b)
{
    if (a.pass != b.pass || a.function != b.function ||
        a.loopId != b.loopId || a.verdict != b.verdict ||
        a.reason != b.reason || a.loc.line != b.loc.line ||
        a.loc.column != b.loc.column || a.args.size() != b.args.size())
        return false;
    for (size_t i = 0; i < a.args.size(); ++i)
        if (a.args[i].name != b.args[i].name ||
            a.args[i].value != b.args[i].value)
            return false;
    return true;
}

Remark &RemarkCollector::add(Remark r)
{
    for (Remark &prev : remarks_)
        if (sameRemark(prev, r))
            return prev;
    remarks_.push_back(std::move(r));
    return remarks_.back();
}

const LoopRecord *RemarkCollector::findLoop(int id) const
{
    for (const LoopRecord &l : loops_)
        if (l.id == id)
            return &l;
    return nullptr;
}

std::vector<const Remark *>
RemarkCollector::byReason(const std::string &reason) const
{
    std::vector<const Remark *> out;
    for (const Remark &r : remarks_)
        if (r.reason == reason)
            out.push_back(&r);
    return out;
}

void RemarkCollector::writeJson(JsonWriter &w,
                                const std::string &sourceFile) const
{
    w.beginObject();
    w.field("schema_version", static_cast<int64_t>(1));
    w.field("file", sourceFile);
    w.key("loops");
    w.beginArray();
    for (const LoopRecord &l : loops_) {
        w.beginObject();
        w.field("id", static_cast<int64_t>(l.id));
        w.field("function", l.function);
        w.field("header", l.header);
        w.field("line", static_cast<int64_t>(l.loc.line));
        w.field("column", static_cast<int64_t>(l.loc.column));
        w.endObject();
    }
    w.endArray();
    w.key("remarks");
    w.beginArray();
    for (const Remark &r : remarks_) {
        w.beginObject();
        w.field("pass", r.pass);
        w.field("function", r.function);
        w.field("loop", static_cast<int64_t>(r.loopId));
        w.field("line", static_cast<int64_t>(r.loc.line));
        w.field("column", static_cast<int64_t>(r.loc.column));
        w.field("verdict", remarkVerdictName(r.verdict));
        w.field("reason", r.reason);
        w.key("args");
        w.beginObject();
        for (const RemarkArg &a : r.args)
            w.field(a.name, a.value);
        w.endObject();
        w.endObject();
    }
    w.endArray();
    w.endObject();
}

std::string RemarkCollector::text(const std::string &sourceFile) const
{
    std::ostringstream os;
    for (const Remark &r : remarks_)
        os << sourceFile << ":" << r.str() << "\n";
    return os.str();
}

} // namespace wmstream::obs
