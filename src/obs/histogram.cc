#include "obs/histogram.h"

namespace wmstream::obs {

void
Histogram::add(int64_t value, uint64_t count)
{
    if (count == 0)
        return;
    if (value < 0)
        value = 0;
    if (static_cast<size_t>(value) >= buckets_.size())
        buckets_.resize(static_cast<size_t>(value) + 1, 0);
    buckets_[static_cast<size_t>(value)] += count;
    if (count_ == 0) {
        min_ = max_ = value;
    } else {
        if (value < min_)
            min_ = value;
        if (value > max_)
            max_ = value;
    }
    count_ += count;
    sum_ += value * static_cast<int64_t>(count);
}

uint64_t
Histogram::at(int64_t value) const
{
    if (value < 0 || static_cast<size_t>(value) >= buckets_.size())
        return 0;
    return buckets_[static_cast<size_t>(value)];
}

int64_t
Histogram::percentile(double p) const
{
    if (count_ == 0)
        return 0;
    if (p < 0.0)
        p = 0.0;
    if (p > 1.0)
        p = 1.0;
    uint64_t target = static_cast<uint64_t>(p * static_cast<double>(count_));
    if (target == 0)
        target = 1;
    uint64_t seen = 0;
    for (size_t v = 0; v < buckets_.size(); ++v) {
        seen += buckets_[v];
        if (seen >= target)
            return static_cast<int64_t>(v);
    }
    return max_;
}

void
Histogram::writeJson(JsonWriter &w) const
{
    w.beginObject();
    w.field("count", count_);
    w.field("min", min());
    w.field("max", max());
    w.field("mean", mean());
    w.field("p50", p50());
    w.field("p95", p95());
    w.field("p99", p99());
    w.key("buckets");
    w.beginArray();
    for (uint64_t b : buckets_)
        w.value(b);
    w.endArray();
    w.endObject();
}

} // namespace wmstream::obs
