#include "obs/json.h"

#include <cmath>
#include <cstdio>

#include "support/diag.h"

namespace wmstream::obs {

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (unsigned char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\b': out += "\\b"; break;
          case '\f': out += "\\f"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (c < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", c);
                out += buf;
            } else {
                out += static_cast<char>(c);
            }
        }
    }
    return out;
}

void
JsonWriter::preValue()
{
    if (stack_.empty())
        return; // top-level value (one per document)
    Level &top = stack_.back();
    if (top.ctx == Ctx::Object) {
        WS_ASSERT(top.keyPending, "JSON object value without a key");
        top.keyPending = false;
        return;
    }
    if (!top.first)
        out_ += ',';
    top.first = false;
}

void
JsonWriter::beginObject()
{
    preValue();
    out_ += '{';
    stack_.push_back({Ctx::Object, true, false});
}

void
JsonWriter::endObject()
{
    WS_ASSERT(!stack_.empty() && stack_.back().ctx == Ctx::Object,
              "unbalanced endObject");
    WS_ASSERT(!stack_.back().keyPending, "dangling key at endObject");
    stack_.pop_back();
    out_ += '}';
}

void
JsonWriter::beginArray()
{
    preValue();
    out_ += '[';
    stack_.push_back({Ctx::Array, true, false});
}

void
JsonWriter::endArray()
{
    WS_ASSERT(!stack_.empty() && stack_.back().ctx == Ctx::Array,
              "unbalanced endArray");
    stack_.pop_back();
    out_ += ']';
}

void
JsonWriter::key(const std::string &k)
{
    WS_ASSERT(!stack_.empty() && stack_.back().ctx == Ctx::Object,
              "JSON key outside an object");
    Level &top = stack_.back();
    WS_ASSERT(!top.keyPending, "two keys in a row");
    if (!top.first)
        out_ += ',';
    top.first = false;
    top.keyPending = true;
    out_ += '"';
    out_ += jsonEscape(k);
    out_ += "\":";
}

void
JsonWriter::value(const std::string &s)
{
    preValue();
    out_ += '"';
    out_ += jsonEscape(s);
    out_ += '"';
}

void
JsonWriter::value(const char *s)
{
    value(std::string(s));
}

void
JsonWriter::value(int64_t v)
{
    preValue();
    char buf[32];
    std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(v));
    out_ += buf;
}

void
JsonWriter::value(uint64_t v)
{
    preValue();
    char buf[32];
    std::snprintf(buf, sizeof buf, "%llu",
                  static_cast<unsigned long long>(v));
    out_ += buf;
}

void
JsonWriter::value(double v)
{
    preValue();
    if (!std::isfinite(v)) {
        // JSON has no Inf/NaN; null is the conventional substitute.
        out_ += "null";
        return;
    }
    char buf[40];
    std::snprintf(buf, sizeof buf, "%.17g", v);
    out_ += buf;
}

void
JsonWriter::value(bool v)
{
    preValue();
    out_ += v ? "true" : "false";
}

void
JsonWriter::valueNull()
{
    preValue();
    out_ += "null";
}

const std::string &
JsonWriter::str() const
{
    WS_ASSERT(stack_.empty(), "JSON document has open containers");
    return out_;
}

} // namespace wmstream::obs
