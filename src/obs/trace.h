/**
 * @file
 * Chrome trace_event JSON sink.
 *
 * Emits the subset of the trace-event format that chrome://tracing
 * and Perfetto load directly: the "JSON Array Format" with counter
 * events ("ph":"C"), complete duration events ("ph":"X"), instant
 * events ("ph":"i"), and thread-name metadata ("ph":"M"). One
 * simulated cycle maps to one microsecond of trace time, so a
 * 10k-cycle run renders as a 10ms timeline.
 *
 * The simulator deduplicates counter samples (emitting only on
 * change); the writer just buffers events and serializes on demand.
 */

#ifndef WMSTREAM_OBS_TRACE_H
#define WMSTREAM_OBS_TRACE_H

#include <cstdint>
#include <string>
#include <vector>

#include "obs/json.h"

namespace wmstream::obs {

/** Buffered trace_event writer. */
class TraceWriter
{
  public:
    /**
     * Register a named track (a "thread" in trace-event terms) and
     * return its tid. Duration/instant events land on tracks;
     * counter events get their own implicit track per counter name.
     */
    int track(const std::string &name);

    /** Counter sample: one series @p name with @p value at @p ts. */
    void counter(const std::string &name, uint64_t ts, double value);

    /** Complete duration event on @p tid covering [ts, ts+dur]. */
    void complete(int tid, const std::string &name, uint64_t ts,
                  uint64_t dur);

    /** Instant event on @p tid. */
    void instant(int tid, const std::string &name, uint64_t ts);

    size_t eventCount() const { return events_.size(); }

    /** Serialize the full trace document. */
    std::string str() const;

    /** Write to @p path; false (and errno set) on I/O failure. */
    bool writeFile(const std::string &path) const;

  private:
    enum class Ph : uint8_t { Counter, Complete, Instant, Meta };
    struct Event
    {
        Ph ph;
        int tid;
        std::string name;
        uint64_t ts;
        uint64_t dur;    // Complete only
        double value;    // Counter only
        std::string arg; // Meta: thread name
    };
    std::vector<Event> events_;
    int nextTid_ = 1;
};

} // namespace wmstream::obs

#endif // WMSTREAM_OBS_TRACE_H
