/**
 * @file
 * Dense histogram over small non-negative integers.
 *
 * Sized for FIFO occupancies: the value domain is 0..depth (tens at
 * most), so the buckets are a dense vector indexed by value and an
 * add() is one bounds check plus an increment — cheap enough to call
 * once per FIFO per simulated cycle when occupancy tracking is on.
 */

#ifndef WMSTREAM_OBS_HISTOGRAM_H
#define WMSTREAM_OBS_HISTOGRAM_H

#include <cstdint>
#include <vector>

#include "obs/json.h"

namespace wmstream::obs {

/** Counts of exact values 0..N plus summary moments. */
class Histogram
{
  public:
    /** Record @p count observations of @p value (negatives clamp to 0). */
    void add(int64_t value, uint64_t count = 1);

    uint64_t count() const { return count_; }
    int64_t sum() const { return sum_; }
    int64_t min() const { return count_ ? min_ : 0; }
    int64_t max() const { return count_ ? max_ : 0; }
    double mean() const
    {
        return count_ ? static_cast<double>(sum_) /
                            static_cast<double>(count_)
                      : 0.0;
    }

    /** Observations of exactly @p value. */
    uint64_t at(int64_t value) const;

    /**
     * Smallest value v such that at least @p p (0..1) of the
     * observations are <= v; 0 on an empty histogram.
     */
    int64_t percentile(double p) const;

    /** @name Conventional percentile shorthands */
    /// @{
    int64_t p50() const { return percentile(0.50); }
    int64_t p95() const { return percentile(0.95); }
    int64_t p99() const { return percentile(0.99); }
    /// @}

    /** Buckets, index = value; trailing zero buckets trimmed. */
    const std::vector<uint64_t> &buckets() const { return buckets_; }

    /** {"count":..,"min":..,"max":..,"mean":..,"buckets":[..]} */
    void writeJson(JsonWriter &w) const;

  private:
    std::vector<uint64_t> buckets_;
    uint64_t count_ = 0;
    int64_t sum_ = 0;
    int64_t min_ = 0;
    int64_t max_ = 0;
};

} // namespace wmstream::obs

#endif // WMSTREAM_OBS_HISTOGRAM_H
