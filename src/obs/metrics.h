/**
 * @file
 * Metrics registry with Prometheus-style text exposition.
 *
 * The CounterRegistry is the repo's internal interchange format
 * (dotted names, insertion-ordered, JSON). This registry is the
 * *external* face of the same numbers: metric families with a type
 * (counter/gauge), optional help text, and label sets, rendered in
 * the Prometheus text exposition format. Today `wmc --metrics-out`
 * writes one scrape-shaped file per invocation; the planned
 * `wmc --server` serves the same registry over /metrics without
 * touching the instrumentation again.
 *
 * Naming: dotted internal names are sanitized to snake_case
 * ("ieu.stall.data_fifo_empty" -> "ieu_stall_data_fifo_empty") and
 * prefixed with "wm_" so every exported series lives in one
 * namespace; cumulative metrics follow the "_total" convention via
 * their counter type.
 */

#ifndef WMSTREAM_OBS_METRICS_H
#define WMSTREAM_OBS_METRICS_H

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "obs/counters.h"

namespace wmstream::obs {

/** A key="value" label pair on a metric sample. */
using MetricLabel = std::pair<std::string, std::string>;

/** Prometheus-facing metric registry. */
class MetricsRegistry
{
  public:
    /** Monotone count (rendered with TYPE counter). */
    void counter(const std::string &name, double v,
                 const std::vector<MetricLabel> &labels = {},
                 const std::string &help = "");

    /** Point-in-time value (rendered with TYPE gauge). */
    void gauge(const std::string &name, double v,
               const std::vector<MetricLabel> &labels = {},
               const std::string &help = "");

    /**
     * Export every entry of @p reg as a counter named
     * "wm_<prefix><sanitized dotted name>", attaching @p labels to
     * each sample.
     */
    void fromCounters(const CounterRegistry &reg,
                      const std::string &prefix = "",
                      const std::vector<MetricLabel> &labels = {});

    size_t size() const { return samples_.size(); }

    /**
     * Prometheus text exposition: "# HELP"/"# TYPE" once per family
     * (first-seen order), then one "name{labels} value" line per
     * sample. Ends with a newline; safe to concatenate with other
     * exposition fragments.
     */
    std::string renderText() const;

    /** "wm_" + @p name with every non-[a-zA-Z0-9_] mapped to '_'. */
    static std::string metricName(const std::string &name);

  private:
    struct Sample
    {
        std::string name; ///< full metric name (already sanitized)
        bool isCounter = true;
        std::string help;
        std::vector<MetricLabel> labels;
        double value = 0.0;
    };
    void add(const std::string &name, bool isCounter, double v,
             const std::vector<MetricLabel> &labels,
             const std::string &help);

    std::vector<Sample> samples_;
};

} // namespace wmstream::obs

#endif // WMSTREAM_OBS_METRICS_H
