/**
 * @file
 * Optimization remarks with source provenance.
 *
 * LLVM-style structured remarks for the two paper passes: every
 * accept/reject decision the recurrence and streaming optimizers make
 * about a loop or a memory reference is recorded as a Remark — pass,
 * loop id, source position, verdict (applied/missed), a stable
 * reason code, and the key operands (stride, trip count, FIFO
 * assignment, ...). `wmc --remarks[=json|text]` serializes the
 * collection; `tools/wmreport` joins it with simulator stats.
 *
 * The collector also owns the **loop-id registry**: every source loop
 * gets one small integer id, keyed by (function, header label). The
 * code expander registers loops with their source position as it emits
 * them, the optimization passes look ids up when they emit remarks,
 * and the driver's final loop-tagging step stamps the same ids onto
 * the RTL instructions so the simulator can attribute cycles per
 * source loop. One registry, three consumers — that is what makes the
 * remark/cycle join line up.
 */

#ifndef WMSTREAM_OBS_REMARKS_H
#define WMSTREAM_OBS_REMARKS_H

#include <cstdint>
#include <string>
#include <vector>

#include "obs/json.h"
#include "support/diag.h"

namespace wmstream::obs {

/** Did the pass apply the transformation or miss it? */
enum class RemarkVerdict : uint8_t { Applied, Missed };

/** "applied" / "missed". */
const char *remarkVerdictName(RemarkVerdict v);

/** One named operand of a remark (stride, trip count, FIFO, ...). */
struct RemarkArg
{
    std::string name;
    std::string value;
};

/** One structured optimization remark. */
struct Remark
{
    std::string pass;     ///< "streaming", "recurrence", ...
    std::string function;
    int loopId = -1;      ///< registry id (see RemarkCollector)
    SourcePos loc;        ///< loop or memory-reference position
    RemarkVerdict verdict = RemarkVerdict::Missed;
    /**
     * Stable lower-kebab-case reason code, e.g.
     * "trip-count-too-small", "memory-recurrence-remains",
     * "not-every-iteration", "no-fifo-available", "streamed".
     */
    std::string reason;
    std::vector<RemarkArg> args;

    Remark &arg(std::string name, std::string value);
    Remark &arg(std::string name, int64_t value);

    /** One human-readable line: "12:5: streaming missed ...". */
    std::string str() const;
};

/** One registered source loop. */
struct LoopRecord
{
    int id = -1;
    std::string function;
    std::string header;   ///< RTL header block label
    SourcePos loc;        ///< position of the loop statement
};

/**
 * Collects remarks and owns the loop-id registry for one compilation.
 *
 * Exact duplicate remarks are dropped on add(): the iterative pass
 * drivers re-analyze a loop after each successful rewrite, so the same
 * rejection can legitimately be re-derived several times.
 */
class RemarkCollector
{
  public:
    /**
     * Id of loop (function, header), registering it on first sight.
     * A valid @p loc fills in or upgrades the record's position; an
     * invalid one leaves the registered position alone.
     */
    int loopId(const std::string &function, const std::string &header,
               SourcePos loc = {});

    /** Record a remark (deduplicated); returns it for arg() chaining. */
    Remark &add(Remark r);

    const std::vector<Remark> &remarks() const { return remarks_; }
    const std::vector<LoopRecord> &loops() const { return loops_; }

    /** Registered record for @p id, or nullptr. */
    const LoopRecord *findLoop(int id) const;

    /** Remarks with @p reason (tests assert exact reason codes). */
    std::vector<const Remark *> byReason(const std::string &reason) const;

    /**
     * Serialize as {"schema_version":N, "file":..., "loops":[...],
     * "remarks":[...]}; @p sourceFile names the compiled buffer.
     */
    void writeJson(JsonWriter &w, const std::string &sourceFile) const;

    /** All remarks as "file:line:col: pass verdict: ..." lines. */
    std::string text(const std::string &sourceFile) const;

  private:
    std::vector<LoopRecord> loops_;
    std::vector<Remark> remarks_;
};

} // namespace wmstream::obs

#endif // WMSTREAM_OBS_REMARKS_H
