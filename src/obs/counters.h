/**
 * @file
 * Named counter registry: the interchange format between the
 * instrumented subsystems and the JSON emitters.
 *
 * Hot loops (the cycle simulator, the scalar timing model) keep their
 * counts in plain struct fields or fixed arrays — a hash lookup per
 * cycle would violate the "instrumentation off is free" budget. After
 * a run, each subsystem *exports* its counts into a CounterRegistry
 * under hierarchical dotted names ("ieu.stall.data_fifo_empty"), and
 * the registry serializes them uniformly. Insertion order is
 * preserved so emitted files are stable and diffable.
 */

#ifndef WMSTREAM_OBS_COUNTERS_H
#define WMSTREAM_OBS_COUNTERS_H

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "obs/json.h"

namespace wmstream::obs {

/** Ordered map of dotted counter names to uint64 values. */
class CounterRegistry
{
  public:
    /** Reference to the counter named @p name, creating it at zero. */
    uint64_t &counter(const std::string &name);

    void set(const std::string &name, uint64_t v) { counter(name) = v; }
    void add(const std::string &name, uint64_t v) { counter(name) += v; }

    /** Value of @p name, or 0 if it was never registered. */
    uint64_t get(const std::string &name) const;

    bool has(const std::string &name) const;
    size_t size() const { return entries_.size(); }

    /** All counters in registration order. */
    const std::vector<std::pair<std::string, uint64_t>> &entries() const
    {
        return entries_;
    }

    /**
     * Sum of all counters whose dotted name starts with
     * "@p prefix." (or equals @p prefix exactly).
     */
    uint64_t sumPrefix(const std::string &prefix) const;

    /** Emit as one flat JSON object of dotted-name keys. */
    void writeJson(JsonWriter &w) const;

  private:
    std::vector<std::pair<std::string, uint64_t>> entries_;
    std::unordered_map<std::string, size_t> index_;
};

} // namespace wmstream::obs

#endif // WMSTREAM_OBS_COUNTERS_H
