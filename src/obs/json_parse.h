/**
 * @file
 * Minimal recursive-descent JSON parser.
 *
 * The observability layer writes JSON through JsonWriter; tools/wmreport
 * needs to read two of those documents back (remarks + sim stats) and
 * join them. The repo takes no third-party dependencies, so this is the
 * matching reader: a small DOM (JsonValue) covering exactly the JSON
 * our own emitters produce — objects, arrays, strings with the standard
 * escapes (including \uXXXX), numbers, booleans, null. Numbers are kept
 * as doubles plus an exact int64 when representable.
 */

#ifndef WMSTREAM_OBS_JSON_PARSE_H
#define WMSTREAM_OBS_JSON_PARSE_H

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace wmstream::obs {

/** One parsed JSON value (a small DOM node). */
class JsonValue
{
  public:
    enum class Kind : uint8_t { Null, Bool, Number, String, Array, Object };

    Kind kind = Kind::Null;

    bool boolVal = false;
    double numVal = 0.0;
    int64_t intVal = 0;     ///< exact when isInt
    bool isInt = false;     ///< numVal came from an integer literal
    std::string strVal;
    std::vector<JsonValue> arr;
    /** Insertion-ordered members (our emitters never repeat keys). */
    std::vector<std::pair<std::string, JsonValue>> members;

    bool isNull() const { return kind == Kind::Null; }
    bool isObject() const { return kind == Kind::Object; }
    bool isArray() const { return kind == Kind::Array; }

    /** Member lookup; nullptr when absent or not an object. */
    const JsonValue *get(const std::string &key) const;

    /** @name Typed member accessors with defaults */
    /// @{
    int64_t getInt(const std::string &key, int64_t dflt = 0) const;
    double getNum(const std::string &key, double dflt = 0.0) const;
    std::string getStr(const std::string &key,
                       const std::string &dflt = "") const;
    /// @}
};

/**
 * Parse @p text as one JSON document. Returns false (and fills
 * @p error with "offset N: message") on malformed input; trailing
 * non-whitespace after the document is an error.
 */
bool parseJson(const std::string &text, JsonValue &out, std::string &error);

} // namespace wmstream::obs

#endif // WMSTREAM_OBS_JSON_PARSE_H
