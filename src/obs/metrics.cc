#include "obs/metrics.h"

#include <cmath>
#include <cstdio>

namespace wmstream::obs {

namespace {

/** Escape a label value per the exposition format. */
std::string
labelEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        if (c == '\\')
            out += "\\\\";
        else if (c == '"')
            out += "\\\"";
        else if (c == '\n')
            out += "\\n";
        else
            out += c;
    }
    return out;
}

/** Shortest exact rendering: integers without a trailing ".0". */
std::string
numText(double v)
{
    if (std::isfinite(v) && v == std::floor(v) &&
            std::fabs(v) < 1e15) {
        char buf[32];
        std::snprintf(buf, sizeof buf, "%.0f", v);
        return buf;
    }
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.17g", v);
    return buf;
}

} // anonymous namespace

std::string
MetricsRegistry::metricName(const std::string &name)
{
    std::string out = "wm_";
    for (char c : name) {
        bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                  (c >= '0' && c <= '9') || c == '_';
        out += ok ? c : '_';
    }
    return out;
}

void
MetricsRegistry::add(const std::string &name, bool isCounter, double v,
                     const std::vector<MetricLabel> &labels,
                     const std::string &help)
{
    Sample s;
    s.name = metricName(name);
    s.isCounter = isCounter;
    s.help = help;
    s.labels = labels;
    s.value = v;
    samples_.push_back(std::move(s));
}

void
MetricsRegistry::counter(const std::string &name, double v,
                         const std::vector<MetricLabel> &labels,
                         const std::string &help)
{
    add(name, true, v, labels, help);
}

void
MetricsRegistry::gauge(const std::string &name, double v,
                       const std::vector<MetricLabel> &labels,
                       const std::string &help)
{
    add(name, false, v, labels, help);
}

void
MetricsRegistry::fromCounters(const CounterRegistry &reg,
                              const std::string &prefix,
                              const std::vector<MetricLabel> &labels)
{
    for (const auto &kv : reg.entries())
        counter(prefix + kv.first, static_cast<double>(kv.second),
                labels);
}

std::string
MetricsRegistry::renderText() const
{
    std::string out;
    // HELP/TYPE headers once per family, samples grouped under their
    // family in first-seen order (the exposition format requires all
    // samples of a family to be consecutive).
    std::vector<std::string> families;
    for (const Sample &s : samples_) {
        bool seen = false;
        for (const std::string &f : families)
            if (f == s.name) {
                seen = true;
                break;
            }
        if (!seen)
            families.push_back(s.name);
    }
    for (const std::string &family : families) {
        bool headered = false;
        for (const Sample &s : samples_) {
            if (s.name != family)
                continue;
            if (!headered) {
                if (!s.help.empty())
                    out += "# HELP " + s.name + " " + s.help + "\n";
                out += "# TYPE " + s.name +
                       (s.isCounter ? " counter\n" : " gauge\n");
                headered = true;
            }
            out += s.name;
            if (!s.labels.empty()) {
                out += "{";
                for (size_t i = 0; i < s.labels.size(); ++i) {
                    if (i)
                        out += ",";
                    out += s.labels[i].first + "=\"" +
                           labelEscape(s.labels[i].second) + "\"";
                }
                out += "}";
            }
            out += " " + numText(s.value) + "\n";
        }
    }
    return out;
}

} // namespace wmstream::obs
