#include "obs/timeseries.h"

#include "support/diag.h"

namespace wmstream::obs {

TimeSeries::TimeSeries(std::vector<std::string> channelNames,
                       uint64_t windowCycles, size_t maxWindows)
    : names_(std::move(channelNames)),
      initialSpan_(windowCycles > 0 ? windowCycles : 1),
      span_(initialSpan_),
      maxWindows_(maxWindows < 2 ? 2 : maxWindows + (maxWindows & 1)),
      cur_(names_.size(), 0)
{
    WS_ASSERT(!names_.empty(), "time series needs channels");
}

int
TimeSeries::channelIndex(const std::string &name) const
{
    for (size_t i = 0; i < names_.size(); ++i)
        if (names_[i] == name)
            return static_cast<int>(i);
    return -1;
}

void
TimeSeries::closeWindow(uint64_t cycles)
{
    Window w;
    w.start = curStart_;
    w.cycles = cycles;
    w.counts = cur_;
    windows_.push_back(std::move(w));
    curStart_ += cycles;
    cur_.assign(names_.size(), 0);
}

void
TimeSeries::decimate()
{
    // Merge adjacent pairs in place and double the span. This runs
    // only when exactly maxWindows_ (even) same-span windows are
    // closed, so the merged windows are contiguous, equal-span, and
    // the next boundary (curStart_) stays aligned to the new span.
    size_t half = windows_.size() / 2;
    for (size_t i = 0; i < half; ++i) {
        Window &a = windows_[2 * i];
        const Window &b = windows_[2 * i + 1];
        a.cycles += b.cycles;
        for (size_t c = 0; c < a.counts.size(); ++c)
            a.counts[c] += b.counts[c];
        if (i != 2 * i)
            windows_[i] = std::move(windows_[2 * i]);
    }
    windows_.resize(half);
    span_ *= 2;
    ++decimations_;
}

void
TimeSeries::advanceTo(uint64_t cycle)
{
    WS_ASSERT(!finished_, "advanceTo after finish");
    while (cycle >= curStart_ + span_) {
        closeWindow(span_);
        if (windows_.size() >= maxWindows_)
            decimate();
    }
}

void
TimeSeries::finish(uint64_t totalCycles)
{
    if (finished_)
        return;
    advanceTo(totalCycles == 0 ? 0 : totalCycles - 1);
    if (totalCycles > curStart_)
        closeWindow(totalCycles - curStart_);
    finished_ = true;
}

uint64_t
TimeSeries::channelTotal(size_t c) const
{
    uint64_t sum = cur_[c];
    for (const Window &w : windows_)
        sum += w.counts[c];
    return sum;
}

uint64_t
TimeSeries::totalCycles() const
{
    uint64_t sum = 0;
    for (const Window &w : windows_)
        sum += w.cycles;
    return sum;
}

void
TimeSeries::writeJson(JsonWriter &w) const
{
    w.beginObject();
    w.field("schema_version", int64_t{1});
    w.field("kind", "timeseries");
    w.field("window_cycles", windowCycles());
    w.field("initial_window_cycles", initialWindowCycles());
    w.field("decimations", static_cast<int64_t>(decimations_));
    w.key("channels");
    w.beginArray();
    for (const std::string &n : names_)
        w.value(n);
    w.endArray();
    w.key("samples");
    w.beginArray();
    for (const Window &win : windows_) {
        w.beginObject();
        w.field("start", win.start);
        w.field("cycles", win.cycles);
        w.key("counts");
        w.beginArray();
        for (uint64_t v : win.counts)
            w.value(v);
        w.endArray();
        w.endObject();
    }
    w.endArray();
    w.endObject();
}

} // namespace wmstream::obs
