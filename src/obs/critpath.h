/**
 * @file
 * Causal critical-path recorder over scheduling events.
 *
 * A simulator records a compact dependency DAG while it runs: one
 * *event* per unit of forward progress (an instruction dispatched or
 * executed, a FIFO value produced or consumed, a stream started or
 * retired), and one *dep* per reason the event could not have
 * happened earlier. Events are appended in simulation order, so the
 * arena index order is already a topological order and both analyses
 * below are single linear passes.
 *
 * Deps come in two kinds. A *direct* dep names its predecessor event
 * outright (value produced by X, dispatched by Y). A *capacity* dep
 * models back-pressure through a bounded queue without naming an
 * event at record time: push number `o` into a queue of depth `d` is
 * enabled by pop number `o - d`, so the recorder keeps the pop event
 * list per queue and resolves the predecessor lazily. That lazy
 * resolution is what makes what-if replay honest about FIFO depth: a
 * replay with `extraDataFifoDepth = k` re-resolves every capacity dep
 * against pop `o - d - k` instead of rewriting the DAG.
 *
 * The recorder is deliberately generic: units, edge causes, and
 * queues are small registered ids with names supplied by the client
 * (wmsim registers its stall-cause taxonomy), so this layer has no
 * dependency on the simulator.
 *
 * Two analyses run over a finished recording:
 *
 *  - analyze(): walk backward from the end event, at each step
 *    following the *binding* dep (the predecessor with the latest
 *    completion cycle). Each step covers the half-open cycle interval
 *    (pred, cur], which is attributed to the (unit, cause, loop) of
 *    the waiting event; the root's own cycle is attributed to the
 *    reserved "start" cause. The intervals partition (0, total], so
 *    attributed cycles sum *exactly* to total cycles — the same
 *    exact-sum contract the time-series telemetry keeps.
 *
 *  - replay(): forward longest-path pass with model latencies,
 *    optionally scaling the latency of whole edge-cause classes
 *    and/or deepening data FIFOs, to predict the cycle count of a
 *    hypothetical machine. Speedup predictions divide two replays
 *    (baseline model / scenario model) so first-order model error
 *    cancels.
 */

#ifndef WMSTREAM_OBS_CRITPATH_H
#define WMSTREAM_OBS_CRITPATH_H

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace wmstream::obs {

/** One (unit, cause, loop) attribution bucket of the critical path. */
struct CritAttrRow
{
    uint8_t unit = 0;
    uint8_t cause = 0;
    int32_t loop = -1;     ///< remarks loop id; -1 = outside any loop
    uint64_t cycles = 0;   ///< critical cycles attributed to this class
    uint64_t edges = 0;    ///< critical edges in this class
};

/** Result of the backward critical-path walk. */
struct CritAnalysis
{
    bool valid = false;        ///< false: truncated or no end event
    uint64_t totalCycles = 0;  ///< cycle of the end event
    uint64_t attributed = 0;   ///< sum of rows[].cycles (== totalCycles)
    uint64_t pathLength = 0;   ///< critical edges walked
    std::vector<CritAttrRow> rows;  ///< sorted by cycles, descending
};

/** A hypothetical machine change, expressed on the DAG. */
struct CritScenario
{
    std::string name;
    /** Extra slots added to every queue registered as a data FIFO. */
    int extraDataFifoDepth = 0;
    /** Latency multiplier per edge-cause name (unlisted causes: 1). */
    std::vector<std::pair<std::string, double>> causeScales;
};

/** Event-DAG recorder plus the two analyses. */
class CritPath
{
  public:
    /** Cause id 0 is reserved; root cycles are attributed to it. */
    static constexpr uint8_t kCauseStart = 0;

    explicit CritPath(size_t maxEvents = kDefaultMaxEvents);

    /** @name Registration (before recording) */
    /// @{
    /** Id for @p name, registering it on first use. */
    uint8_t unit(const std::string &name);
    uint8_t cause(const std::string &name);
    /**
     * Register a bounded queue of @p depth slots. @p dataFifo marks
     * queues that scenarios with extraDataFifoDepth should deepen.
     */
    int queue(const std::string &name, int depth, bool dataFifo);
    /// @}

    /** @name Recording */
    /// @{
    /**
     * Append an event at @p cycle; subsequent dep()/pushDep() calls
     * attach to it. @p waitCause labels the stall the actor last
     * reported before making this progress (0 = none; the binding
     * dep's edge cause is used instead). Returns -1 once the event
     * cap is hit, after which the recording is marked truncated and
     * all further calls are no-ops.
     */
    int32_t event(uint64_t cycle, uint8_t unit, int32_t loop,
                  uint8_t waitCause = 0);
    /** Direct dep of the latest event on @p pred (-1 is ignored). */
    void dep(int32_t pred, uint8_t cause, float latency);
    /**
     * Capacity dep: the latest event pushes into queue @p q. The
     * push ordinal is assigned automatically; the predecessor is the
     * pop that freed the slot, resolved at analysis time.
     */
    void pushDep(int q, uint8_t cause, float latency);
    /** Record that @p consumer popped one value from queue @p q. */
    void pop(int q, int32_t consumer);
    /** Designate the final event the analyses walk back from. */
    void setEnd(int32_t ev) { end_ = ev; }
    /// @}

    /** @name Introspection */
    /// @{
    bool truncated() const { return truncated_; }
    int32_t end() const { return end_; }
    size_t eventCount() const { return events_.size(); }
    size_t depCount() const { return deps_.size(); }
    uint64_t eventCycle(int32_t ev) const;
    const std::string &unitName(uint8_t u) const { return units_[u]; }
    const std::string &causeName(uint8_t c) const { return causes_[c]; }
    size_t unitCount() const { return units_.size(); }
    size_t causeCount() const { return causes_.size(); }
    /// @}

    /** Backward walk; see file comment for the exact-sum contract. */
    CritAnalysis analyze() const;

    /**
     * Forward longest-path replay under @p s; returns the predicted
     * end-event completion time in cycles (0 if invalid). Call with a
     * default CritScenario for the model baseline.
     */
    double replay(const CritScenario &s) const;

  private:
    static constexpr size_t kDefaultMaxEvents = size_t{1} << 22;

    struct Event
    {
        uint64_t cycle;
        uint32_t firstDep;
        uint16_t nDeps;
        uint8_t unit;
        uint8_t waitCause;
        int32_t loop;
    };
    struct Dep
    {
        int32_t pred;      ///< direct predecessor; -1 for capacity deps
        uint32_t ordinal;  ///< push ordinal (capacity deps)
        float latency;     ///< model cycles pred -> event
        int16_t queue;     ///< queue id for capacity deps; -1 direct
        uint8_t cause;
    };
    struct Queue
    {
        std::string name;
        int depth;
        bool dataFifo;
        uint32_t pushes = 0;
        std::vector<int32_t> pops;
    };

    /** Freeing pop for a capacity dep, or -1 if never blocked. */
    int32_t resolveCapacity(const Dep &d, int extraDataDepth) const;

    std::vector<Event> events_;
    std::vector<Dep> deps_;
    std::vector<std::string> units_;
    std::vector<std::string> causes_;
    std::vector<Queue> queues_;
    size_t maxEvents_;
    int32_t end_ = -1;
    bool truncated_ = false;
    bool recording_ = true;
};

} // namespace wmstream::obs

#endif // WMSTREAM_OBS_CRITPATH_H
