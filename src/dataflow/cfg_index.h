/**
 * @file
 * Dense integer indexing of a function's CFG.
 *
 * The dataflow solvers never touch Block pointers in their inner
 * loops: CfgIndex numbers every block once (layout order), flattens
 * succ/pred edges into index vectors, and computes reverse post-order
 * and post-order traversals. Solvers then iterate plain ints over
 * contiguous arrays, which is what makes the pooled-bitset form fast.
 *
 * The index snapshots the CFG at construction; callers must build it
 * after recomputeCfg() and rebuild it if edges change.
 */

#ifndef WMSTREAM_DATAFLOW_CFG_INDEX_H
#define WMSTREAM_DATAFLOW_CFG_INDEX_H

#include <cstddef>
#include <unordered_map>
#include <vector>

#include "rtl/inst.h"

namespace wmstream::dataflow {

class CfgIndex
{
  public:
    explicit CfgIndex(rtl::Function &fn);

    size_t size() const { return blocks_.size(); }
    rtl::Block *block(size_t i) const { return blocks_[i]; }
    /** Index of @p b; blocks unreachable from entry are still
     *  numbered (layout order covers every block). */
    size_t indexOf(const rtl::Block *b) const
    {
        return indexMap_.at(b);
    }
    bool contains(const rtl::Block *b) const
    {
        return indexMap_.count(b) != 0;
    }

    const std::vector<size_t> &succs(size_t i) const { return succs_[i]; }
    const std::vector<size_t> &preds(size_t i) const { return preds_[i]; }

    /** Reverse post-order over blocks reachable from entry (entry
     *  first). Unreachable blocks are appended after, in layout
     *  order, so every block gets visited exactly once. */
    const std::vector<size_t> &rpo() const { return rpo_; }
    /** Post-order (exit-most first); reverse of rpo(). */
    const std::vector<size_t> &postOrder() const { return postOrder_; }

  private:
    std::vector<rtl::Block *> blocks_;
    std::unordered_map<const rtl::Block *, size_t> indexMap_;
    std::vector<std::vector<size_t>> succs_;
    std::vector<std::vector<size_t>> preds_;
    std::vector<size_t> rpo_;
    std::vector<size_t> postOrder_;
};

} // namespace wmstream::dataflow

#endif // WMSTREAM_DATAFLOW_CFG_INDEX_H
