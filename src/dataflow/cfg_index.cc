#include "dataflow/cfg_index.h"

namespace wmstream::dataflow {

CfgIndex::CfgIndex(rtl::Function &fn)
{
    blocks_.reserve(fn.blocks().size());
    for (auto &b : fn.blocks()) {
        indexMap_.emplace(b.get(), blocks_.size());
        blocks_.push_back(b.get());
    }
    size_t n = blocks_.size();
    succs_.resize(n);
    preds_.resize(n);
    for (size_t i = 0; i < n; ++i) {
        succs_[i].reserve(blocks_[i]->succs.size());
        for (rtl::Block *s : blocks_[i]->succs)
            succs_[i].push_back(indexMap_.at(s));
        preds_[i].reserve(blocks_[i]->preds.size());
        for (rtl::Block *p : blocks_[i]->preds)
            preds_[i].push_back(indexMap_.at(p));
    }

    // Iterative DFS post-order from entry. A "visited" mark per block
    // plus an explicit stack of (node, next-successor) frames keeps
    // this linear and recursion-free even on pathological CFGs.
    if (n) {
        std::vector<uint8_t> visited(n, 0);
        std::vector<std::pair<size_t, size_t>> stack;
        stack.reserve(n);
        visited[0] = 1;
        stack.emplace_back(0, 0);
        postOrder_.reserve(n);
        while (!stack.empty()) {
            auto &[node, next] = stack.back();
            if (next < succs_[node].size()) {
                size_t s = succs_[node][next++];
                if (!visited[s]) {
                    visited[s] = 1;
                    stack.emplace_back(s, 0);
                }
            } else {
                postOrder_.push_back(node);
                stack.pop_back();
            }
        }
        rpo_.assign(postOrder_.rbegin(), postOrder_.rend());
        // Blocks never reached from entry (possible mid-pass, before
        // removeUnreachable) are tacked on so solvers still
        // initialize and visit them.
        for (size_t i = 0; i < n; ++i)
            if (!visited[i]) {
                rpo_.push_back(i);
                postOrder_.push_back(i);
            }
    }
}

} // namespace wmstream::dataflow
