/**
 * @file
 * Bump-allocation arena for dataflow bitsets.
 *
 * Mirrors the nesfab `bitset_pool` idiom: one analysis run clears the
 * pool, allocates all of its in/out/gen/kill sets from it, and the
 * backing memory is reused verbatim by the next run — repeated solves
 * over the same function (DCE rebuilds liveness many times per
 * cleanup pipeline) touch the allocator once and then recycle.
 *
 * Allocation hands out word-aligned spans from chunked slabs; spans
 * are never freed individually. clear() rewinds every slab cursor but
 * keeps the slabs, so steady-state alloc() is a pointer bump.
 */

#ifndef WMSTREAM_DATAFLOW_POOL_H
#define WMSTREAM_DATAFLOW_POOL_H

#include <cstddef>
#include <memory>
#include <vector>

#include "dataflow/bitset.h"

namespace wmstream::dataflow {

class BitsetPool
{
  public:
    /** Allocate a zeroed span of @p words words. */
    BitsetWord *alloc(size_t words)
    {
        if (words == 0)
            return nullptr;
        ++allocCount_;
        while (chunkIndex_ < chunks_.size()) {
            Chunk &c = chunks_[chunkIndex_];
            if (c.used + words <= c.size) {
                BitsetWord *p = c.data.get() + c.used;
                c.used += words;
                bitsetClearAll(words, p);
                return p;
            }
            // Current chunk is full; move on (its tail is wasted
            // until the next clear(), which is fine for our sizes).
            ++chunkIndex_;
        }
        size_t size = chunks_.empty() ? kMinChunkWords
                                      : chunks_.back().size * 2;
        if (size < words)
            size = words;
        Chunk c;
        c.data = std::make_unique<BitsetWord[]>(size);
        c.size = size;
        c.used = words;
        chunks_.push_back(std::move(c));
        chunkIndex_ = chunks_.size() - 1;
        BitsetWord *p = chunks_.back().data.get();
        bitsetClearAll(words, p);
        return p;
    }

    /** Rewind all cursors; capacity (slabs) is retained for reuse. */
    void clear()
    {
        for (Chunk &c : chunks_)
            c.used = 0;
        chunkIndex_ = 0;
    }

    /** Total words of slab capacity currently held. */
    size_t capacityWords() const
    {
        size_t n = 0;
        for (const Chunk &c : chunks_)
            n += c.size;
        return n;
    }
    /** Number of slabs held (stable across clear(); grows only when
     *  a run outgrows existing capacity — the reuse test keys on it). */
    size_t chunkCount() const { return chunks_.size(); }
    /** Lifetime alloc() calls (diagnostics only). */
    size_t allocCount() const { return allocCount_; }

  private:
    static constexpr size_t kMinChunkWords = 1024;

    struct Chunk
    {
        std::unique_ptr<BitsetWord[]> data;
        size_t size = 0;
        size_t used = 0;
    };

    std::vector<Chunk> chunks_;
    size_t chunkIndex_ = 0;
    size_t allocCount_ = 0;
};

} // namespace wmstream::dataflow

#endif // WMSTREAM_DATAFLOW_POOL_H
