/**
 * @file
 * Worklist dataflow solvers over CfgIndex + BitsetPool.
 *
 * Two modes:
 *
 *  - BitsetSolver: the classic gen/kill bit-vector form
 *    (out = gen | (in & ~kill), join by union or intersection),
 *    iterated with a round-robin worklist in the direction's natural
 *    order (RPO forward, post-order backward). This is the engine
 *    under liveness and reaching copies.
 *
 *  - solveGeneral: arbitrary per-block states with client transfer
 *    and join closures, for lattices that do not fit bit vectors
 *    (the FIFO occupancy intervals and depth counters in
 *    src/verify). Same worklist scheduling, dirty-flag driven.
 *
 * Both run until a fixpoint; termination is the client's obligation
 * (monotone transfer over a finite lattice; the FIFO analyses
 * saturate their counters to bound the lattice height).
 */

#ifndef WMSTREAM_DATAFLOW_SOLVER_H
#define WMSTREAM_DATAFLOW_SOLVER_H

#include <cstddef>
#include <functional>
#include <vector>

#include "dataflow/bitset.h"
#include "dataflow/cfg_index.h"
#include "dataflow/pool.h"

namespace wmstream::dataflow {

enum class Direction : uint8_t { Forward, Backward };
enum class Join : uint8_t { Union, Intersect };

/**
 * Gen/kill bit-vector dataflow.
 *
 * Usage: construct, fill gen()/kill() per block, call solve(); then
 * read in()/out(). For Backward problems "in" is still the state at
 * block entry and "out" at block exit: liveness reads live-in from
 * in() and live-out from out(), with transfer in = gen | (out & ~kill).
 *
 * Intersect joins initialize interior blocks to TOP (all bits); the
 * boundary block (entry for forward, every exit for backward) starts
 * at the empty set.
 */
class BitsetSolver
{
  public:
    BitsetSolver(BitsetPool &pool, const CfgIndex &cfg, size_t bits,
                 Direction dir, Join join)
        : pool_(pool), cfg_(cfg), bits_(bits),
          words_(bitsetWords(bits)), dir_(dir), join_(join)
    {
        size_t n = cfg.size();
        gen_.resize(n);
        kill_.resize(n);
        in_.resize(n);
        out_.resize(n);
        for (size_t i = 0; i < n; ++i) {
            gen_[i] = pool_.alloc(words_);
            kill_[i] = pool_.alloc(words_);
            in_[i] = pool_.alloc(words_);
            out_[i] = pool_.alloc(words_);
        }
    }

    size_t bits() const { return bits_; }
    size_t words() const { return words_; }

    BitsetWord *gen(size_t b) { return gen_[b]; }
    BitsetWord *kill(size_t b) { return kill_[b]; }
    BitsetWord *in(size_t b) { return in_[b]; }
    BitsetWord *out(size_t b) { return out_[b]; }
    const BitsetWord *in(size_t b) const { return in_[b]; }
    const BitsetWord *out(size_t b) const { return out_[b]; }

    /** Iterate to fixpoint. Returns the number of sweeps taken. */
    size_t solve()
    {
        size_t n = cfg_.size();
        if (!n || !words_)
            return 0;
        if (join_ == Join::Intersect)
            initIntersectTop();
        const std::vector<size_t> &order =
            dir_ == Direction::Forward ? cfg_.rpo() : cfg_.postOrder();
        std::vector<BitsetWord> temp(words_);
        size_t sweeps = 0;
        bool changed = true;
        while (changed) {
            changed = false;
            ++sweeps;
            for (size_t b : order)
                if (step(b, temp.data()))
                    changed = true;
        }
        iterations_ = sweeps;
        return sweeps;
    }

    /** Sweeps taken by the last solve() (convergence tests). */
    size_t iterations() const { return iterations_; }

  private:
    // Join predecessors' outs into in (forward) or successors' ins
    // into out (backward), apply transfer, report change.
    bool step(size_t b, BitsetWord *temp)
    {
        const std::vector<size_t> &edges = dir_ == Direction::Forward
                                               ? cfg_.preds(b)
                                               : cfg_.succs(b);
        BitsetWord *joined =
            dir_ == Direction::Forward ? in_[b] : out_[b];
        bool changed = false;
        if (!edges.empty()) {
            bool first = true;
            for (size_t e : edges) {
                const BitsetWord *src = dir_ == Direction::Forward
                                            ? out_[e]
                                            : in_[e];
                if (join_ == Join::Union) {
                    changed |= bitsetOr(words_, joined, src);
                } else if (first) {
                    bitsetCopy(words_, temp, src);
                    first = false;
                } else {
                    bitsetAnd(words_, temp, src);
                }
            }
            if (join_ == Join::Intersect && !first) {
                if (!bitsetEqual(words_, joined, temp)) {
                    bitsetCopy(words_, joined, temp);
                    changed = true;
                }
            }
        }
        // transfer: result = gen | (joined & ~kill)
        bitsetCopy(words_, temp, joined);
        bitsetAndNot(words_, temp, kill_[b]);
        bitsetOr(words_, temp, gen_[b]);
        BitsetWord *result =
            dir_ == Direction::Forward ? out_[b] : in_[b];
        if (!bitsetEqual(words_, result, temp)) {
            bitsetCopy(words_, result, temp);
            changed = true;
        }
        return changed;
    }

    void initIntersectTop()
    {
        // Boundary blocks keep the empty set; interior blocks start
        // at TOP so the first real join lowers them.
        size_t n = cfg_.size();
        for (size_t i = 0; i < n; ++i) {
            bool boundary = dir_ == Direction::Forward
                                ? cfg_.preds(i).empty()
                                : cfg_.succs(i).empty();
            if (!boundary) {
                BitsetWord *joined =
                    dir_ == Direction::Forward ? in_[i] : out_[i];
                bitsetSetAll(words_, joined, bits_);
            }
        }
    }

    BitsetPool &pool_;
    const CfgIndex &cfg_;
    size_t bits_;
    size_t words_;
    Direction dir_;
    Join join_;
    size_t iterations_ = 0;
    std::vector<BitsetWord *> gen_, kill_, in_, out_;
};

/**
 * General-transfer forward/backward solver.
 *
 * State is any copyable value type; unreached blocks hold no state
 * (tracked with a reached flag), which models TOP for arbitrary
 * lattices. The client supplies:
 *
 *   transfer(block, in) -> out              (applied on every visit)
 *   join(accum, incoming, block) -> changed (in-place meet into
 *       accum at `block`; the index lets clients attribute join
 *       mismatches to the program point)
 *
 * Returns the per-block input states (index-aligned with cfg);
 * outputs can be recomputed by the caller via transfer where needed.
 * `reached[b]` distinguishes "never executed" from "empty state".
 */
template <typename State>
struct GeneralResult
{
    std::vector<State> in;
    std::vector<uint8_t> reached;
    size_t iterations = 0;
};

/**
 * Core seeded form: explicit seed states and an edge predicate.
 * `seeds` pairs (block index, initial state); `edgeOk(from, to)`
 * gates propagation — a false return prunes the edge, which is how
 * the FIFO region walks restrict themselves to one loop and exclude
 * back edges. Seed order matters only when seeds collide (later
 * seeds join into earlier ones).
 */
template <typename State, typename TransferFn, typename JoinFn,
          typename EdgeFn>
GeneralResult<State>
solveGeneralSeeded(const CfgIndex &cfg, Direction dir,
                   const std::vector<std::pair<size_t, State>> &seeds,
                   TransferFn transfer, JoinFn join, EdgeFn edgeOk)
{
    size_t n = cfg.size();
    GeneralResult<State> r;
    r.in.resize(n);
    r.reached.assign(n, 0);
    if (!n)
        return r;
    const std::vector<size_t> &order =
        dir == Direction::Forward ? cfg.rpo() : cfg.postOrder();
    for (const auto &[b, state] : seeds) {
        if (!r.reached[b]) {
            r.in[b] = state;
            r.reached[b] = 1;
        } else {
            join(r.in[b], state, b);
        }
    }
    bool changed = true;
    while (changed) {
        changed = false;
        ++r.iterations;
        for (size_t b : order) {
            if (!r.reached[b])
                continue;
            State out = transfer(b, r.in[b]);
            const std::vector<size_t> &edges =
                dir == Direction::Forward ? cfg.succs(b)
                                          : cfg.preds(b);
            for (size_t e : edges) {
                size_t from = dir == Direction::Forward ? b : e;
                size_t to = dir == Direction::Forward ? e : b;
                if (!edgeOk(from, to))
                    continue;
                if (!r.reached[e]) {
                    r.in[e] = out;
                    r.reached[e] = 1;
                    changed = true;
                } else if (join(r.in[e], out, e)) {
                    changed = true;
                }
            }
        }
    }
    return r;
}

template <typename State, typename TransferFn, typename JoinFn>
GeneralResult<State>
solveGeneral(const CfgIndex &cfg, Direction dir, const State &boundary,
             TransferFn transfer, JoinFn join)
{
    size_t n = cfg.size();
    // Seed every boundary block: the entry (no preds) for forward,
    // each exit (no succs) for backward. Other blocks start
    // unreached (TOP) and acquire state on first join.
    std::vector<std::pair<size_t, State>> seeds;
    for (size_t b = 0; b < n; ++b) {
        bool isBoundary = dir == Direction::Forward
                              ? cfg.preds(b).empty()
                              : cfg.succs(b).empty();
        if (isBoundary)
            seeds.emplace_back(b, boundary);
    }
    if (seeds.empty() && n) {
        // Degenerate CFG (e.g. single infinite loop with no exit):
        // seed the traversal start so the solve still progresses.
        const std::vector<size_t> &order =
            dir == Direction::Forward ? cfg.rpo() : cfg.postOrder();
        seeds.emplace_back(order.front(), boundary);
    }
    return solveGeneralSeeded(cfg, dir, seeds, transfer, join,
                              [](size_t, size_t) { return true; });
}

} // namespace wmstream::dataflow

#endif // WMSTREAM_DATAFLOW_SOLVER_H
