/**
 * @file
 * Dense bitset primitives over raw word arrays.
 *
 * The dataflow framework stores every analysis fact set as a span of
 * 64-bit words allocated from a BitsetPool (pool.h), in the style of
 * the nesfab liveness kernels: no per-set heap allocation, no
 * per-element hashing, and the solver's inner loop is word-parallel
 * OR/AND over contiguous memory. All functions take the word count
 * explicitly; the caller owns sizing (bitsetWords()).
 */

#ifndef WMSTREAM_DATAFLOW_BITSET_H
#define WMSTREAM_DATAFLOW_BITSET_H

#include <cstddef>
#include <cstdint>
#include <cstring>

namespace wmstream::dataflow {

using BitsetWord = uint64_t;
constexpr size_t kBitsetWordBits = 64;

/** Words needed to hold @p bits bits (0 bits -> 0 words). */
inline size_t
bitsetWords(size_t bits)
{
    return (bits + kBitsetWordBits - 1) / kBitsetWordBits;
}

inline void
bitsetSet(BitsetWord *p, size_t i)
{
    p[i / kBitsetWordBits] |= BitsetWord{1} << (i % kBitsetWordBits);
}

inline void
bitsetReset(BitsetWord *p, size_t i)
{
    p[i / kBitsetWordBits] &= ~(BitsetWord{1} << (i % kBitsetWordBits));
}

inline bool
bitsetTest(const BitsetWord *p, size_t i)
{
    return (p[i / kBitsetWordBits] >>
            (i % kBitsetWordBits)) & BitsetWord{1};
}

inline void
bitsetClearAll(size_t words, BitsetWord *p)
{
    std::memset(p, 0, words * sizeof(BitsetWord));
}

/** Set the first @p bits bits; trailing bits of the last word stay 0
 *  so bitsetEqual/bitsetCount never see garbage. */
inline void
bitsetSetAll(size_t words, BitsetWord *p, size_t bits)
{
    if (!words)
        return;
    std::memset(p, 0xFF, words * sizeof(BitsetWord));
    size_t tail = bits % kBitsetWordBits;
    if (tail)
        p[words - 1] = (BitsetWord{1} << tail) - 1;
}

inline void
bitsetCopy(size_t words, BitsetWord *dst, const BitsetWord *src)
{
    std::memcpy(dst, src, words * sizeof(BitsetWord));
}

/** dst |= src; returns true when dst changed. */
inline bool
bitsetOr(size_t words, BitsetWord *dst, const BitsetWord *src)
{
    BitsetWord changed = 0;
    for (size_t i = 0; i < words; ++i) {
        BitsetWord next = dst[i] | src[i];
        changed |= next ^ dst[i];
        dst[i] = next;
    }
    return changed != 0;
}

/** dst &= src; returns true when dst changed. */
inline bool
bitsetAnd(size_t words, BitsetWord *dst, const BitsetWord *src)
{
    BitsetWord changed = 0;
    for (size_t i = 0; i < words; ++i) {
        BitsetWord next = dst[i] & src[i];
        changed |= next ^ dst[i];
        dst[i] = next;
    }
    return changed != 0;
}

/** dst &= ~src. */
inline void
bitsetAndNot(size_t words, BitsetWord *dst, const BitsetWord *src)
{
    for (size_t i = 0; i < words; ++i)
        dst[i] &= ~src[i];
}

inline bool
bitsetEqual(size_t words, const BitsetWord *a, const BitsetWord *b)
{
    return std::memcmp(a, b, words * sizeof(BitsetWord)) == 0;
}

inline size_t
bitsetCount(size_t words, const BitsetWord *p)
{
    size_t n = 0;
    for (size_t i = 0; i < words; ++i)
        n += static_cast<size_t>(__builtin_popcountll(p[i]));
    return n;
}

/** Call @p f(index) for every set bit, ascending. */
template <typename F>
inline void
bitsetForEach(size_t words, const BitsetWord *p, F f)
{
    for (size_t w = 0; w < words; ++w) {
        BitsetWord bits = p[w];
        while (bits) {
            unsigned tz =
                static_cast<unsigned>(__builtin_ctzll(bits));
            f(w * kBitsetWordBits + tz);
            bits &= bits - 1;
        }
    }
}

} // namespace wmstream::dataflow

#endif // WMSTREAM_DATAFLOW_BITSET_H
