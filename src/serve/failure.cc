#include "serve/failure.h"

namespace wmstream::serve {

const char *
tuStatusName(TuStatus s)
{
    switch (s) {
      case TuStatus::Ok: return "ok";
      case TuStatus::OkDegraded: return "ok_degraded";
      case TuStatus::UserError: return "user_error";
      case TuStatus::Timeout: return "timeout";
      case TuStatus::Failed: return "failed";
      case TuStatus::Skipped: return "skipped";
    }
    return "unknown";
}

const char *
failureKindName(FailureKind k)
{
    switch (k) {
      case FailureKind::None: return "none";
      case FailureKind::UserError: return "user_error";
      case FailureKind::Panic: return "panic";
      case FailureKind::VerifyError: return "verify_error";
      case FailureKind::Timeout: return "timeout";
      case FailureKind::RtlBudget: return "rtl_budget";
    }
    return "unknown";
}

bool
failureIsTransient(FailureKind k)
{
    return k == FailureKind::Timeout;
}

bool
failureIsDegradable(FailureKind k)
{
    return k == FailureKind::Panic || k == FailureKind::VerifyError ||
           k == FailureKind::RtlBudget;
}

} // namespace wmstream::serve
