/**
 * @file
 * The fault-isolated batch compile runner (`wmc --batch`).
 *
 * Compiles a manifest of translation units across the shared
 * support::ThreadPool with per-TU fault isolation: a panicking,
 * verifier-rejected, over-budget, or deadline-blown TU yields a typed
 * failure record (serve/failure.h) while the rest of the batch
 * completes. Three mechanisms compose:
 *
 *  - panic containment: driver::compile() throws InternalError
 *    instead of exiting; the worker catches it per attempt, so one
 *    poisoned TU cannot kill thousands of in-flight compiles;
 *
 *  - a watchdog thread enforcing per-TU deadlines: each attempt
 *    registers (cancel flag, deadline); the watchdog sets the flag
 *    when the deadline passes and the compile unwinds cooperatively
 *    at its next pipeline checkpoint (CancelledError). Deadline
 *    expiry is classified transient and retried with jittered,
 *    seeded backoff up to maxRetries times;
 *
 *  - the graceful-degradation ladder, mirroring the paper's fallback
 *    from streamed to scalar code: full pipeline -> streaming
 *    disabled -> scalar-only codegen. A deterministic, degradable
 *    failure demotes the TU one rung and recompiles; success at a
 *    demoted rung is reported as ok_degraded and surfaced as a
 *    `serve` remark with a stable reason code
 *    ("degraded-no-streaming" / "degraded-scalar-only"). A TU that
 *    fails deterministically at the bottom rung becomes a typed hard
 *    failure.
 *
 * Reports are deterministic: records sit in manifest order for any
 * worker count, and every counter except wall times is a pure
 * function of (TU sources, options).
 */

#ifndef WMSTREAM_SERVE_BATCH_H
#define WMSTREAM_SERVE_BATCH_H

#include <cstdint>
#include <string>
#include <vector>

#include "driver/compiler.h"
#include "obs/json.h"
#include "serve/failure.h"

namespace wmstream::serve {

/** Rungs of the degradation ladder, most aggressive first. */
enum class LadderLevel : uint8_t {
    Full = 0,       ///< the requested configuration, unmodified
    NoStreaming = 1,///< streaming + vectorization disabled
    ScalarOnly = 2, ///< recurrence optimization disabled too
};

/** Stable kebab-case name of @p l ("full", "no-streaming",
 *  "scalar-only"); report JSON and remark reason codes build on it. */
const char *ladderLevelName(LadderLevel l);

/** @p base with the demotions of ladder rung @p l applied. */
driver::CompileOptions applyLadder(driver::CompileOptions base,
                                   LadderLevel l);

/** One translation unit of a batch. */
struct TuJob
{
    std::string id;     ///< manifest path or synthetic name
    std::string source; ///< TU contents (already loaded)
    /** Non-empty when the manifest named an unreadable file: the TU
     *  becomes a user_error record without compiling. */
    std::string loadError;
    /** Poison for the isolation self-test: WS_PANIC during compile
     *  (every ladder level; the TU must be quarantined). */
    bool injectPanic = false;
    /** Poison for the ladder self-test: the dropped stream dequeue
     *  the verifier catches; biting TUs must demote to no-streaming
     *  and finish ok_degraded. */
    bool injectVerifierBug = false;
};

struct BatchOptions
{
    /** Compile configuration at LadderLevel::Full. The runner forces
     *  verify to Each when Off: verify-each violations are what arms
     *  the degradation ladder. */
    driver::CompileOptions base;
    int jobs = 1;           ///< worker threads (clamped to >= 1)
    int tuTimeoutMs = 0;    ///< per-attempt deadline (0 = none)
    int maxRetries = 2;     ///< transient retries per ladder rung
    bool failFast = false;  ///< abort the batch on the first hard failure
    /** Base of the exponential backoff after a transient failure, in
     *  milliseconds (attempt k sleeps base * 2^k plus seeded jitter
     *  in [0, base]); 0 disables sleeping (tests). */
    int backoffBaseMs = 1;
    uint64_t backoffSeed = 1; ///< jitter determinism
    /** Keep the printed artifact text in each ok record (tests and
     *  the bit-identity self-check); hashes are always kept. */
    bool keepArtifacts = false;
    int watchdogPollMs = 1; ///< deadline scan period
};

/** One compile attempt in a record's trail. */
struct TuAttempt
{
    LadderLevel level = LadderLevel::Full;
    FailureKind outcome = FailureKind::None; ///< None = success
    std::string signature; ///< failure signature ("" on success)
    double wallMs = 0;
};

/** The per-TU row of the batch report. */
struct TuRecord
{
    std::string id;
    TuStatus status = TuStatus::Skipped;
    int attempts = 0;             ///< compile attempts actually run
    LadderLevel level = LadderLevel::Full; ///< final rung reached
    /** Demotion remark reason code ("" when never demoted):
     *  "degraded-no-streaming" or "degraded-scalar-only". */
    std::string degradation;
    double wallMs = 0;            ///< total across attempts
    /** FNV-1a 64 over the printed target assembly; 0 when no
     *  artifact was produced. Healthy TUs must hash identically to a
     *  solo wmc compile — the batch-isolation acceptance criterion. */
    uint64_t artifactHash = 0;
    std::string artifact;         ///< kept when keepArtifacts
    TuFailure failure;            ///< final failure (kind None if ok)
    std::vector<TuAttempt> trail; ///< every attempt, in order
};

/** The schema-versioned batch report (`wmc --batch-report=FILE`). */
struct BatchReport
{
    /** Bump when the JSON layout changes incompatibly. */
    static constexpr int kSchemaVersion = 1;

    std::vector<TuRecord> tus; ///< manifest order, all TUs, always
    int total = 0;
    int ok = 0;
    int okDegraded = 0;
    int userErrors = 0;
    int timeouts = 0;
    int failed = 0;
    int skipped = 0;
    int64_t attempts = 0; ///< compile attempts across the batch
    int demotions = 0;    ///< ladder demotions across the batch
    int retries = 0;      ///< transient same-rung retries
    bool aborted = false; ///< --fail-fast tripped
    double wallMs = 0;    ///< batch wall clock (host-dependent)

    /**
     * TUs isolated from the normal full-pipeline path: hard failures
     * and timeouts (typed failure record, no artifact) plus degraded
     * successes (typed demotion record, fallback artifact). This is
     * the count the fault-injection campaign pins to the number of
     * poisoned TUs.
     */
    int quarantined() const { return failed + timeouts + okDegraded; }

    /** Emit as one JSON object value. */
    void writeJson(obs::JsonWriter &w) const;

    /** Multi-line human summary (aggregates + non-ok TU lines). */
    std::string summaryText() const;
};

/** Compile @p jobs under @p opts. Blocks until the batch completes
 *  (or aborts under failFast). Never throws for per-TU failures. */
BatchReport runBatch(const std::vector<TuJob> &jobs,
                     const BatchOptions &opts);

/**
 * Load a batch manifest: one TU path per line, relative paths
 * resolved against the manifest's directory, `#` comments and blank
 * lines skipped. A path may be followed by whitespace-separated
 * poison tokens `inject-panic` / `inject-verifier-bug` (written by
 * `wmfuzz --batch-campaign --batch-dir`). Unreadable TU files become
 * jobs with loadError set (per-TU user_error records), preserving
 * fault isolation; only an unreadable manifest itself fails the
 * load. Returns false and sets @p error on failure.
 */
bool loadManifest(const std::string &path, std::vector<TuJob> &out,
                  std::string &error);

/** FNV-1a 64 of @p s (artifact hashing; shared with the fuzz dedup
 *  digests' spirit). */
uint64_t artifactHash(const std::string &s);

} // namespace wmstream::serve

#endif // WMSTREAM_SERVE_BATCH_H
