#include "serve/batch.h"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <fstream>
#include <list>
#include <memory>
#include <mutex>
#include <sstream>
#include <thread>
#include <utility>

#include "m68k/printer.h"
#include "support/rng.h"
#include "support/str.h"
#include "support/thread_pool.h"
#include "verify/verify.h"
#include "wm/printer.h"

namespace wmstream::serve {

namespace {

using Clock = std::chrono::steady_clock;

double
msSince(Clock::time_point t0)
{
    return std::chrono::duration<double, std::milli>(Clock::now() - t0)
        .count();
}

/**
 * The watchdog's view of one in-flight compile attempt: set `cancel`
 * once `deadline` passes; the compile unwinds at its next pipeline
 * checkpoint. Entries are owned by the registry (shared_ptr) so a
 * late watchdog scan can never touch a flag whose attempt already
 * finished and unregistered.
 */
struct DeadlineEntry
{
    std::shared_ptr<std::atomic<bool>> cancel;
    Clock::time_point deadline;
};

class DeadlineRegistry
{
  public:
    std::list<DeadlineEntry>::iterator
    add(std::shared_ptr<std::atomic<bool>> cancel, Clock::time_point at)
    {
        std::lock_guard<std::mutex> lock(mu_);
        return entries_.insert(entries_.end(),
                               DeadlineEntry{std::move(cancel), at});
    }

    void remove(std::list<DeadlineEntry>::iterator it)
    {
        std::lock_guard<std::mutex> lock(mu_);
        entries_.erase(it);
    }

    void fireExpired(Clock::time_point now)
    {
        std::lock_guard<std::mutex> lock(mu_);
        for (DeadlineEntry &e : entries_)
            if (now >= e.deadline)
                e.cancel->store(true);
    }

  private:
    std::mutex mu_;
    std::list<DeadlineEntry> entries_;
};

/**
 * Everything the worker closures and the watchdog share. Held by
 * shared_ptr from every closure per the ThreadPool contract: a worker
 * may outlive runBatch's interest in an individual slot, but never
 * the state itself.
 */
struct BatchState
{
    const std::vector<TuJob> *jobs = nullptr;
    BatchOptions opts;
    std::vector<TuRecord> records;
    std::atomic<bool> stop{false};
    std::atomic<bool> watchdogStop{false};
    DeadlineRegistry deadlines;
    support::ThreadPool *pool = nullptr;
    std::mutex mu; ///< guards records during the parallel phase
};

std::string
printArtifact(const driver::CompileOptions &opts,
              const rtl::Program &prog)
{
    if (opts.target == rtl::MachineKind::WM)
        return wm::printProgram(prog);
    return m68k::printProgram(prog);
}

const char *
degradationReason(LadderLevel l)
{
    switch (l) {
      case LadderLevel::Full: return "";
      case LadderLevel::NoStreaming: return "degraded-no-streaming";
      case LadderLevel::ScalarOnly: return "degraded-scalar-only";
    }
    return "";
}

/** Classified outcome of one compile attempt. */
struct AttemptOutcome
{
    TuFailure failure; ///< kind None on success
    std::string artifact;
    uint64_t artifactHash = 0;
};

AttemptOutcome
runAttempt(const TuJob &job, const driver::CompileOptions &opts)
{
    AttemptOutcome out;
    driver::CompileResult cr;
    try {
        cr = driver::compile({job.id, job.source, opts});
    } catch (const InternalError &e) {
        out.failure = {FailureKind::Panic, e.signature(), e.what()};
        return out;
    } catch (const CancelledError &e) {
        FailureKind k = e.reason() == "rtl-budget" ? FailureKind::RtlBudget
                                                   : FailureKind::Timeout;
        out.failure = {k, e.reason(), e.what()};
        return out;
    }
    if (!cr.ok) {
        out.failure = {FailureKind::UserError, "diagnostics",
                       cr.diagnostics};
        return out;
    }
    if (!cr.verifyClean()) {
        out.failure = {FailureKind::VerifyError,
                       verify::joinedSignature(cr.verifyReports),
                       cr.verifyText()};
        return out;
    }
    out.artifact = printArtifact(opts, *cr.program);
    out.artifactHash = artifactHash(out.artifact);
    return out;
}

/** Run one TU through the retry/degradation ladder. */
void
runTu(BatchState &st, size_t index)
{
    const TuJob &job = (*st.jobs)[index];
    const BatchOptions &bo = st.opts;
    TuRecord rec;
    rec.id = job.id;

    Clock::time_point tuStart = Clock::now();
    if (!job.loadError.empty()) {
        rec.status = TuStatus::UserError;
        rec.failure = {FailureKind::UserError, "load-error",
                       job.loadError};
    } else {
        support::Rng jitter =
            support::Rng(bo.backoffSeed).split(index);
        LadderLevel level = LadderLevel::Full;
        int retriesAtLevel = 0;
        bool done = false;
        while (!done) {
            driver::CompileOptions co = applyLadder(bo.base, level);
            co.injectPanicTu = job.injectPanic;
            co.injectVerifierBug = job.injectVerifierBug;
            auto cancel = std::make_shared<std::atomic<bool>>(false);
            co.cancel = cancel.get();

            bool armed = bo.tuTimeoutMs > 0;
            std::list<DeadlineEntry>::iterator deadlineIt;
            if (armed)
                deadlineIt = st.deadlines.add(
                    cancel, Clock::now() + std::chrono::milliseconds(
                                               bo.tuTimeoutMs));
            Clock::time_point t0 = Clock::now();
            AttemptOutcome att = runAttempt(job, co);
            double wall = msSince(t0);
            if (armed)
                st.deadlines.remove(deadlineIt);

            rec.attempts++;
            rec.trail.push_back({level, att.failure.kind,
                                 att.failure.signature, wall});
            rec.level = level;
            rec.failure = att.failure;

            if (att.failure.ok()) {
                rec.status = level == LadderLevel::Full
                                 ? TuStatus::Ok
                                 : TuStatus::OkDegraded;
                rec.artifactHash = att.artifactHash;
                if (bo.keepArtifacts)
                    rec.artifact = std::move(att.artifact);
                done = true;
            } else if (failureIsTransient(att.failure.kind)) {
                if (retriesAtLevel < bo.maxRetries) {
                    retriesAtLevel++;
                    if (bo.backoffBaseMs > 0) {
                        int64_t base = static_cast<int64_t>(
                            bo.backoffBaseMs)
                            << (retriesAtLevel - 1);
                        int64_t sleepMs =
                            base + static_cast<int64_t>(
                                       jitter.nextBelow(
                                           static_cast<uint64_t>(
                                               bo.backoffBaseMs) +
                                           1));
                        std::this_thread::sleep_for(
                            std::chrono::milliseconds(sleepMs));
                    }
                } else {
                    rec.status = TuStatus::Timeout;
                    done = true;
                }
            } else if (failureIsDegradable(att.failure.kind)) {
                if (level != LadderLevel::ScalarOnly) {
                    level = level == LadderLevel::Full
                                ? LadderLevel::NoStreaming
                                : LadderLevel::ScalarOnly;
                    rec.degradation = degradationReason(level);
                    retriesAtLevel = 0;
                } else {
                    rec.status = TuStatus::Failed;
                    done = true;
                }
            } else {
                rec.status = TuStatus::UserError;
                done = true;
            }
        }
    }
    rec.wallMs = msSince(tuStart);

    bool hardFailure = rec.status != TuStatus::Ok &&
                       rec.status != TuStatus::OkDegraded;
    {
        std::lock_guard<std::mutex> lock(st.mu);
        st.records[index] = std::move(rec);
    }
    if (hardFailure && bo.failFast &&
        !st.stop.exchange(true))
        st.pool->cancelPending();
}

} // namespace

const char *
ladderLevelName(LadderLevel l)
{
    switch (l) {
      case LadderLevel::Full: return "full";
      case LadderLevel::NoStreaming: return "no-streaming";
      case LadderLevel::ScalarOnly: return "scalar-only";
    }
    return "unknown";
}

driver::CompileOptions
applyLadder(driver::CompileOptions base, LadderLevel l)
{
    if (l >= LadderLevel::NoStreaming) {
        base.streaming = false;
        base.vectorize = false;
    }
    if (l >= LadderLevel::ScalarOnly)
        base.recurrence = false;
    return base;
}

uint64_t
artifactHash(const std::string &s)
{
    uint64_t h = 14695981039346656037ull; // FNV offset basis
    for (unsigned char c : s) {
        h ^= c;
        h *= 1099511628211ull; // FNV prime
    }
    return h;
}

BatchReport
runBatch(const std::vector<TuJob> &jobs, const BatchOptions &opts)
{
    Clock::time_point batchStart = Clock::now();

    auto st = std::make_shared<BatchState>();
    st->jobs = &jobs;
    st->opts = opts;
    if (st->opts.jobs < 1)
        st->opts.jobs = 1;
    // Verify-each violations are the degradation ladder's trigger:
    // without them a streaming-pass miscompile would sail through to
    // the artifact. Respect an explicit Final, upgrade Off.
    if (st->opts.base.verify == driver::VerifyMode::Off)
        st->opts.base.verify = driver::VerifyMode::Each;
    st->records.resize(jobs.size());
    for (size_t i = 0; i < jobs.size(); i++) {
        st->records[i].id = jobs[i].id;
        st->records[i].status = TuStatus::Skipped;
    }

    support::ThreadPool pool(st->opts.jobs);
    st->pool = &pool;

    std::thread watchdog([st] {
        while (!st->watchdogStop.load()) {
            st->deadlines.fireExpired(Clock::now());
            std::this_thread::sleep_for(std::chrono::milliseconds(
                st->opts.watchdogPollMs > 0 ? st->opts.watchdogPollMs
                                            : 1));
        }
    });

    for (size_t i = 0; i < jobs.size(); i++)
        pool.submit([st, i] {
            if (st->stop.load())
                return; // record stays Skipped
            runTu(*st, i);
        });
    pool.wait();

    st->watchdogStop.store(true);
    watchdog.join();

    BatchReport report;
    report.tus = std::move(st->records);
    report.total = static_cast<int>(report.tus.size());
    report.aborted = st->stop.load();
    for (const TuRecord &r : report.tus) {
        switch (r.status) {
          case TuStatus::Ok: report.ok++; break;
          case TuStatus::OkDegraded: report.okDegraded++; break;
          case TuStatus::UserError: report.userErrors++; break;
          case TuStatus::Timeout: report.timeouts++; break;
          case TuStatus::Failed: report.failed++; break;
          case TuStatus::Skipped: report.skipped++; break;
        }
        report.attempts += r.attempts;
        if (!r.degradation.empty())
            report.demotions +=
                static_cast<int>(r.level) - static_cast<int>(
                                                LadderLevel::Full);
        for (const TuAttempt &a : r.trail)
            if (a.outcome == FailureKind::Timeout)
                report.retries++;
    }
    // Final-timeout attempts were deadline expiries, not retries.
    report.retries -= report.timeouts;
    if (report.retries < 0)
        report.retries = 0;
    report.wallMs = msSince(batchStart);
    return report;
}

void
BatchReport::writeJson(obs::JsonWriter &w) const
{
    w.beginObject();
    w.field("schema_version", kSchemaVersion);
    w.field("kind", "wmc-batch-report");
    w.field("total", total);
    w.field("ok", ok);
    w.field("ok_degraded", okDegraded);
    w.field("user_errors", userErrors);
    w.field("timeouts", timeouts);
    w.field("failed", failed);
    w.field("skipped", skipped);
    w.field("quarantined", quarantined());
    w.field("attempts", attempts);
    w.field("demotions", demotions);
    w.field("retries", retries);
    w.field("aborted", aborted);
    w.field("wall_ms", wallMs);
    w.key("tus");
    w.beginArray();
    for (const TuRecord &r : tus) {
        w.beginObject();
        w.field("id", r.id);
        w.field("status", tuStatusName(r.status));
        w.field("attempts", r.attempts);
        w.field("level", ladderLevelName(r.level));
        w.field("degradation", r.degradation);
        w.field("wall_ms", r.wallMs);
        w.field("artifact_hash", r.artifactHash);
        if (!r.failure.ok()) {
            w.key("failure");
            w.beginObject();
            w.field("kind", failureKindName(r.failure.kind));
            w.field("signature", r.failure.signature);
            w.field("detail", r.failure.detail);
            w.endObject();
        }
        w.key("trail");
        w.beginArray();
        for (const TuAttempt &a : r.trail) {
            w.beginObject();
            w.field("level", ladderLevelName(a.level));
            w.field("outcome", failureKindName(a.outcome));
            w.field("signature", a.signature);
            w.field("wall_ms", a.wallMs);
            w.endObject();
        }
        w.endArray();
        w.endObject();
    }
    w.endArray();
    w.endObject();
}

std::string
BatchReport::summaryText() const
{
    std::ostringstream os;
    os << strFormat(
        "batch: %d TUs: %d ok, %d ok_degraded, %d user_error, "
        "%d timeout, %d failed, %d skipped (%d quarantined, "
        "%lld attempts, %d demotions, %d retries)%s\n",
        total, ok, okDegraded, userErrors, timeouts, failed, skipped,
        quarantined(), static_cast<long long>(attempts), demotions,
        retries, aborted ? " [aborted]" : "");
    for (const TuRecord &r : tus) {
        if (r.status == TuStatus::Ok)
            continue;
        if (r.status == TuStatus::OkDegraded) {
            os << strFormat(
                "serve remark: %s: %s (recovered at level %s "
                "after %d attempts)\n",
                r.id.c_str(), r.degradation.c_str(),
                ladderLevelName(r.level), r.attempts);
            continue;
        }
        os << strFormat(
            "serve: %s: %s%s%s (%d attempts, final level %s)\n",
            r.id.c_str(), tuStatusName(r.status),
            r.failure.signature.empty() ? "" : ": ",
            r.failure.signature.c_str(), r.attempts,
            ladderLevelName(r.level));
    }
    return os.str();
}

bool
loadManifest(const std::string &path, std::vector<TuJob> &out,
             std::string &error)
{
    std::ifstream in(path);
    if (!in) {
        error = "cannot open manifest " + path;
        return false;
    }
    std::string dir;
    size_t slash = path.find_last_of('/');
    if (slash != std::string::npos)
        dir = path.substr(0, slash + 1);

    std::string line;
    int lineNo = 0;
    while (std::getline(in, line)) {
        lineNo++;
        std::string trimmed = trimString(line);
        if (trimmed.empty() || trimmed[0] == '#')
            continue;
        std::istringstream tokens(trimmed);
        std::string tuPath;
        tokens >> tuPath;
        TuJob job;
        job.id = tuPath;
        std::string token;
        while (tokens >> token) {
            if (token == "inject-panic") {
                job.injectPanic = true;
            } else if (token == "inject-verifier-bug") {
                job.injectVerifierBug = true;
            } else {
                error = strFormat(
                    "%s:%d: unknown manifest token '%s'",
                    path.c_str(), lineNo, token.c_str());
                return false;
            }
        }
        std::string resolved =
            (!tuPath.empty() && tuPath[0] == '/') ? tuPath
                                                  : dir + tuPath;
        std::ifstream tu(resolved);
        if (!tu) {
            job.loadError = "cannot open " + resolved;
        } else {
            std::ostringstream src;
            src << tu.rdbuf();
            job.source = src.str();
        }
        out.push_back(std::move(job));
    }
    return true;
}

} // namespace wmstream::serve
