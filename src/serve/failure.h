/**
 * @file
 * The per-TU failure taxonomy for the batch compile service.
 *
 * Every way one translation unit can fail inside a batch gets a typed
 * kind, a stable signature (the dedup key, in the spirit of
 * wmsim::FaultReport::signature() and verify::Violation::signature()),
 * and a classification the retry policy keys on:
 *
 *  - transient failures (deadline expiry) are retried at the same
 *    degradation level with jittered backoff — the machine may simply
 *    have been loaded;
 *  - deterministic, degradable failures (panic, verifier violation,
 *    RTL-budget trip) re-run one rung down the degradation ladder —
 *    exactly the paper's posture of falling back from streamed to
 *    scalar code when the aggressive form cannot be trusted;
 *  - deterministic, non-degradable failures (user diagnostics) stop
 *    immediately: no pipeline change fixes a source error.
 *
 * See DESIGN.md §15 for the full taxonomy table.
 */

#ifndef WMSTREAM_SERVE_FAILURE_H
#define WMSTREAM_SERVE_FAILURE_H

#include <cstdint>
#include <string>

namespace wmstream::serve {

/** Final status of one TU in the batch report. */
enum class TuStatus : uint8_t {
    Ok,         ///< compiled clean at the requested (full) level
    OkDegraded, ///< compiled clean after >= 1 ladder demotion
    UserError,  ///< source diagnostics: the user's bug, not ours
    Timeout,    ///< deadline expired on every retry
    Failed,     ///< deterministic internal failure at every level
    Skipped,    ///< batch aborted (--fail-fast) before this TU ran
};

/** Stable lower_snake_case name of @p s (batch report JSON). */
const char *tuStatusName(TuStatus s);

/** What kind of failure one compile attempt produced. */
enum class FailureKind : uint8_t {
    None,        ///< the attempt succeeded
    UserError,   ///< DiagEngine errors (deterministic, not degradable)
    Panic,       ///< InternalError escaped a pass (compiler bug)
    VerifyError, ///< IR verifier violations (compiler bug)
    Timeout,     ///< per-TU deadline expired (transient)
    RtlBudget,   ///< RTL instruction budget exceeded (deterministic)
};

/** Stable lower_snake_case name of @p k (report JSON, reason codes). */
const char *failureKindName(FailureKind k);

/** Retry-at-same-level failures: may succeed on a quieter machine. */
bool failureIsTransient(FailureKind k);

/** Ladder-demotion failures: a less aggressive pipeline may avoid
 *  the failing transform entirely. */
bool failureIsDegradable(FailureKind k);

/** One typed failure record: kind + dedup signature + human detail. */
struct TuFailure
{
    FailureKind kind = FailureKind::None;
    /**
     * Program-independent dedup key: "panic@file:line" for panics,
     * the joined verify::Violation signatures for verifier findings,
     * "deadline" / "rtl-budget" for budget trips, "diagnostics" for
     * user errors. Two TUs poisoned by the same compiler bug fold to
     * one signature.
     */
    std::string signature;
    std::string detail; ///< diagnostics / what() text

    bool ok() const { return kind == FailureKind::None; }
};

} // namespace wmstream::serve

#endif // WMSTREAM_SERVE_FAILURE_H
