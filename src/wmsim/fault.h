/**
 * @file
 * Stall taxonomy, typed simulation faults, and deadlock forensics
 * for the WM machine.
 *
 * The decoupled access/execute design makes FIFO producer/consumer
 * balance a correctness property: a miscompiled queue discipline
 * wedges the machine with every unit waiting on a FIFO that will
 * never fill (or drain). Instead of burning cycles until the limit
 * and returning an opaque string, the simulator's watchdog detects a
 * bounded no-progress window, snapshots the machine, and builds a
 * wait-for graph whose nodes are the units (IFU/IEU/FEU/VEU/SCUs)
 * and whose edges say "X cannot proceed until Y acts", reusing the
 * StallCause taxonomy for edge labels.
 *
 * Classification:
 *  - Deadlock: no progress counter moved for a full watchdog window.
 *    If the wait-for graph contains a cycle it is reported; otherwise
 *    the chain from the first blocked unit to its unsatisfiable
 *    resource is.
 *  - Livelock: the cycle limit was reached while progress counters
 *    were still moving (e.g. unbounded recursion or an infinite
 *    loop that keeps executing instructions).
 *
 * The report is a plain value type with three render paths: a dedup
 * signature (wmfuzz buckets findings by blocked units + causes +
 * wait cycle, not error-string prefix), human-readable text, and a
 * schema_version'd JSON object (wmc --fault-report=json, stats-json
 * "fault" section, joined by wmreport).
 */

#ifndef WMSTREAM_WMSIM_FAULT_H
#define WMSTREAM_WMSIM_FAULT_H

#include <cstdint>
#include <string>
#include <vector>

#include "obs/json.h"

namespace wmstream::wmsim {

/**
 * Why a unit could not make progress this cycle.
 *
 * Each stalled unit-cycle is attributed to exactly one cause — the
 * first condition, in the unit's own evaluation order, that blocked
 * it — so per-unit cause counts sum exactly to that unit's total
 * stall cycles (see DESIGN.md "Stall-cause taxonomy").
 */
enum class StallCause : uint8_t {
    None,              ///< made progress (not a stall)
    DataFifoEmpty,     ///< input operand FIFO has no data yet
    DataFifoFull,      ///< output enqueue target FIFO is full
    CcFifoEmpty,       ///< IFU: conditional jump waits on a compare
    CcFifoFull,        ///< compare result has nowhere to go
    StoreQueueFull,    ///< store address queue is full
    MemPortContention, ///< all memory ports claimed this cycle
    StreamOwnership,   ///< FIFO owned by an active stream
    DivBusy,           ///< unit occupied by a multi-cycle divide
    InstQueueEmpty,    ///< unit has no work (idle, not a stall)
    InstQueueFull,     ///< IFU: target unit's instruction queue full
    SyncWait,          ///< IFU: synchronizing op waits for unit drain
    VeuBusy,           ///< IFU: vector op waits for the VEU
    ScuDrainWait,      ///< IFU: stream start waits for IEU drain
    ScuUnavailable,    ///< IFU: no free stream control unit
    ScuFifoBusy,       ///< IFU: previous stream still owns the FIFO
    kCount
};

/** Stable lower_snake_case name of @p c (JSON keys, test messages). */
const char *stallCauseName(StallCause c);

/** What kind of fault ended the run (SimResult::fault). */
enum class SimFault : uint8_t {
    None,         ///< run completed (or failed before simulation)
    RuntimeError, ///< program error: bad address, divide by zero, ...
    Deadlock,     ///< watchdog: no progress for a full window
    Livelock,     ///< cycle limit reached while still making progress
};

/** Stable lower_snake_case name of @p f (JSON, exit-code mapping). */
const char *simFaultName(SimFault f);

/** Snapshot of one unit at fault time. */
struct FaultUnitState
{
    std::string unit;    ///< "ifu", "ieu", "feu", "veu", "scu0", ...
    bool blocked = false;
    StallCause cause = StallCause::None;
    int64_t pc = -1;     ///< IFU: fetch pc; units: -1
    std::string inst;    ///< head-of-queue / fetch-pc instruction text
    int loopId = -1;     ///< source loop of `inst` (rtl::Inst::loopId)
};

/** Snapshot of one FIFO or queue at fault time. */
struct FaultQueueState
{
    std::string name;    ///< occupancy-series name, e.g. "in_fifo.int0"
    int occupancy = 0;
    int capacity = 0;
};

/** Snapshot of one active stream at fault time. */
struct FaultStreamState
{
    int scu = -1;
    bool input = true;
    int side = 0;        ///< 0 = int, 1 = flt
    int fifo = 0;
    int64_t base = 0;
    int64_t stride = 0;
    int64_t count = -1;  ///< -1 = unbounded
    int64_t issued = 0;
    int64_t done = 0;
    int64_t dispatchedEnqueues = 0;
    bool closed = false;
};

/** One wait-for edge: @p from cannot proceed until @p to acts. */
struct WaitForEdge
{
    std::string from;
    std::string to;
    std::string why;     ///< StallCause name or free-form reason
};

/**
 * Structured fault report. Built by the simulator's watchdog (and by
 * the cycle-limit path for livelocks); carried in SimResult.
 */
struct FaultReport
{
    /** Bump when the JSON layout changes incompatibly. */
    static constexpr int kSchemaVersion = 1;

    SimFault kind = SimFault::None;
    uint64_t cycle = 0;             ///< cycle the fault was raised
    uint64_t lastProgressCycle = 0; ///< last cycle any counter moved
    uint64_t window = 0;            ///< configured no-progress window
    std::string message;            ///< one-line summary

    std::vector<FaultUnitState> units;
    std::vector<FaultQueueState> queues;
    std::vector<FaultStreamState> streams;
    std::vector<WaitForEdge> edges;
    /**
     * Node names forming a wait-for cycle (first node repeated at the
     * end), or — when the graph is acyclic — the chain from the first
     * blocked unit to its dead-end resource.
     */
    std::vector<std::string> waitChain;
    bool cycleFound = false; ///< waitChain is a true cycle

    /**
     * Dedup key for fuzz campaigns: fault kind + sorted
     * "unit=cause" pairs + the wait chain. Two deadlocks of the same
     * shape (same blocked units, same causes, same cycle) collapse to
     * one signature regardless of addresses, counts, or cycle
     * numbers.
     */
    std::string signature() const;

    /** Multi-line human-readable rendering (wmc --fault-report). */
    std::string text() const;

    /**
     * Emit the report as one JSON object value (caller is positioned
     * at a value: top level, array slot, or after key()).
     */
    void writeJson(obs::JsonWriter &w) const;
};

/**
 * Find a cycle in @p edges by DFS. Returns the node names of the
 * first cycle found with the entry node repeated at the end
 * ("ieu" -> "scu0" -> "ifu" -> "ieu"), or empty when acyclic.
 */
std::vector<std::string> findWaitCycle(
    const std::vector<WaitForEdge> &edges);

} // namespace wmstream::wmsim

#endif // WMSTREAM_WMSIM_FAULT_H
