#include "wmsim/whatif.h"

namespace wmstream::wmsim {

namespace {

/** @p base minus its observability hooks: a clean measurement run. */
SimConfig
measurementConfig(const SimConfig &base)
{
    SimConfig c = base;
    c.collectOccupancy = false;
    c.trace = nullptr;
    c.timeseries = nullptr;
    c.critpath = nullptr;
    return c;
}

} // namespace

std::vector<CritWhatIf>
critPathWhatIfs(const SimConfig &baseIn)
{
    const SimConfig base = measurementConfig(baseIn);
    std::vector<CritWhatIf> out;

    {
        CritWhatIf w;
        w.name = "fifo_depth_plus_8";
        w.description = "data FIFOs 8 entries deeper";
        w.replay.name = w.name;
        w.replay.extraDataFifoDepth = 8;
        w.resim = base;
        w.resim.dataFifoDepth = base.dataFifoDepth + 8;
        out.push_back(std::move(w));
    }
    {
        CritWhatIf w;
        w.name = "zero_latency_scu";
        w.description = "SCU first address on the start cycle";
        w.replay.name = w.name;
        w.replay.causeScales.push_back({"scu_startup", 0.0});
        w.resim = base;
        w.resim.scuStartupCycles = 0;
        out.push_back(std::move(w));
    }
    {
        CritWhatIf w;
        w.name = "faster_eu_2x";
        w.description = "execution units at twice the clock";
        w.replay.name = w.name;
        w.replay.causeScales.push_back({"execute", 0.5});
        w.resim = base;
        // No half-cycle ALU knob exists; prediction only.
        w.validatable = false;
        out.push_back(std::move(w));
    }
    {
        CritWhatIf w;
        w.name = "mem_latency_half";
        w.description = "memory latency halved";
        w.replay.name = w.name;
        w.replay.causeScales.push_back({"mem_latency", 0.5});
        w.resim = base;
        w.resim.memLatency = base.memLatency > 1 ? base.memLatency / 2 : 1;
        // Replay scales edges by exactly 0.5; only validate when the
        // integer config knob can express the same machine.
        w.validatable = base.memLatency % 2 == 0 && base.memLatency >= 2;
        out.push_back(std::move(w));
    }

    return out;
}

} // namespace wmstream::wmsim
