/**
 * @file
 * Cycle-level simulator for the WM decoupled access/execute machine.
 *
 * Models the units of the paper's Figure 1:
 *  - an instruction fetch unit (IFU) that dispatches instructions into
 *    per-unit FIFO instruction queues and itself executes control
 *    transfers using per-unit condition-code FIFOs (unconditional
 *    jumps are free; conditional jumps stall only when the CC FIFO is
 *    empty);
 *  - an integer and a floating-point execution unit (IEU/FEU), each
 *    executing its queue in order, one instruction per cycle (divides
 *    take longer), reading register 0/1 as data-FIFO dequeues and
 *    writing register 0/1 as enqueues, with register 31 hardwired to
 *    zero;
 *  - stream control units (SCUs) that autonomously generate the
 *    address sequence of SinX/SoutX instructions and move data between
 *    memory and the data FIFOs;
 *  - a flat memory with a configurable access latency and a
 *    configurable number of ports.
 *
 * Loads are executed by the IEU as address generations; the datum
 * arrives in the input FIFO of the data's unit after the memory
 * latency. Stores pair an address (from the IEU) with data enqueued
 * into the output FIFO. Memory ordering between pending stores,
 * stream-outs, and loads is enforced by dispatch order.
 *
 * Deviation from the paper, documented in DESIGN.md: the dual-ALU
 * "result not available to the following instruction" rule is modeled
 * as a fully interlocked pipeline (no stall, result visible next
 * cycle); int/float conversions are executed by the IFU as
 * synchronizing instructions, as the paper prescribes.
 */

#ifndef WMSTREAM_WMSIM_SIM_H
#define WMSTREAM_WMSIM_SIM_H

#include <cstdint>
#include <deque>
#include <string>
#include <unordered_map>
#include <vector>

#include "rtl/program.h"

namespace wmstream::wmsim {

/** Tunable machine parameters. */
struct SimConfig
{
    int memLatency = 4;        ///< cycles from request to FIFO arrival
    int memPorts = 2;          ///< memory requests accepted per cycle
    int instQueueDepth = 8;    ///< per-unit instruction queue entries
    int dataFifoDepth = 8;     ///< per data FIFO entries
    int ccFifoDepth = 8;       ///< per condition-code FIFO entries
    int storeQueueDepth = 8;   ///< pending store addresses per side
    int numSCUs = 4;           ///< concurrent streams supported
    int scuStartupCycles = 4;  ///< SCU activation to first address
    int scuBurst = 1;          ///< memory requests per SCU per cycle
    int veuLanes = 4;          ///< vector unit elements per cycle
    int fetchWidth = 4;        ///< IFU instructions processed per cycle
    int divLatency = 8;        ///< integer and float divide occupancy
    uint64_t maxCycles = 2'000'000'000;
    size_t memBytes = 16u << 20;
};

/** Aggregate run statistics. */
struct SimStats
{
    uint64_t cycles = 0;
    uint64_t instsDispatched = 0;
    uint64_t ieuExecuted = 0;
    uint64_t feuExecuted = 0;
    uint64_t ifuExecuted = 0;
    uint64_t loadsIssued = 0;
    uint64_t storesCommitted = 0;
    uint64_t streamElementsIn = 0;
    uint64_t streamElementsOut = 0;
    uint64_t vectorElements = 0;
    uint64_t ieuStallCycles = 0;
    uint64_t feuStallCycles = 0;
    uint64_t ifuStallCycles = 0;
};

/** Result of a simulation. */
struct SimResult
{
    bool ok = false;
    int64_t returnValue = 0;
    std::string error;
    SimStats stats;
};

/**
 * Simulator instance: owns the flattened code and memory image.
 *
 * The program must be laid out (Program::layout) and lowered to WM
 * FIFO form. Memory can be inspected after the run for test oracles.
 */
class Simulator
{
  public:
    Simulator(const rtl::Program &prog, SimConfig config = {});

    /** Run main() to completion. */
    SimResult run();

    /** @name Post-run memory inspection */
    /// @{
    int64_t readInt(int64_t addr) const;
    double readDouble(int64_t addr) const;
    uint8_t readByte(int64_t addr) const;
    /// @}

  private:
    struct Impl;
    std::unique_ptr<Impl> impl_;

  public:
    ~Simulator();
};

/** One-call convenience: construct and run. */
SimResult simulate(const rtl::Program &prog, SimConfig config = {});

} // namespace wmstream::wmsim

#endif // WMSTREAM_WMSIM_SIM_H
