/**
 * @file
 * Cycle-level simulator for the WM decoupled access/execute machine.
 *
 * Models the units of the paper's Figure 1:
 *  - an instruction fetch unit (IFU) that dispatches instructions into
 *    per-unit FIFO instruction queues and itself executes control
 *    transfers using per-unit condition-code FIFOs (unconditional
 *    jumps are free; conditional jumps stall only when the CC FIFO is
 *    empty);
 *  - an integer and a floating-point execution unit (IEU/FEU), each
 *    executing its queue in order, one instruction per cycle (divides
 *    take longer), reading register 0/1 as data-FIFO dequeues and
 *    writing register 0/1 as enqueues, with register 31 hardwired to
 *    zero;
 *  - stream control units (SCUs) that autonomously generate the
 *    address sequence of SinX/SoutX instructions and move data between
 *    memory and the data FIFOs;
 *  - a flat memory with a configurable access latency and a
 *    configurable number of ports.
 *
 * Loads are executed by the IEU as address generations; the datum
 * arrives in the input FIFO of the data's unit after the memory
 * latency. Stores pair an address (from the IEU) with data enqueued
 * into the output FIFO. Memory ordering between pending stores,
 * stream-outs, and loads is enforced by dispatch order.
 *
 * Deviation from the paper, documented in DESIGN.md: the dual-ALU
 * "result not available to the following instruction" rule is modeled
 * as a fully interlocked pipeline (no stall, result visible next
 * cycle); int/float conversions are executed by the IFU as
 * synchronizing instructions, as the paper prescribes.
 */

#ifndef WMSTREAM_WMSIM_SIM_H
#define WMSTREAM_WMSIM_SIM_H

#include <cstdint>
#include <deque>
#include <string>
#include <unordered_map>
#include <vector>

#include "obs/counters.h"
#include "obs/critpath.h"
#include "obs/histogram.h"
#include "obs/timeseries.h"
#include "obs/trace.h"
#include "rtl/program.h"
#include "wmsim/fault.h"

namespace wmstream::wmsim {

/** Tunable machine parameters. */
struct SimConfig
{
    int memLatency = 4;        ///< cycles from request to FIFO arrival
    int memPorts = 2;          ///< memory requests accepted per cycle
    int instQueueDepth = 8;    ///< per-unit instruction queue entries
    int dataFifoDepth = 8;     ///< per data FIFO entries
    int ccFifoDepth = 8;       ///< per condition-code FIFO entries
    int storeQueueDepth = 8;   ///< pending store addresses per side
    int numSCUs = 4;           ///< concurrent streams supported
    int scuStartupCycles = 4;  ///< SCU activation to first address
    int scuBurst = 1;          ///< memory requests per SCU per cycle
    int veuLanes = 4;          ///< vector unit elements per cycle
    int fetchWidth = 4;        ///< IFU instructions processed per cycle
    int divLatency = 8;        ///< integer and float divide occupancy
    /**
     * Hard cycle budget. A run that is still making progress at the
     * limit ends with SimFault::Livelock; genuine deadlocks are
     * caught long before this by the watchdog. The default bounds a
     * runaway test at seconds, not hours.
     */
    uint64_t maxCycles = 50'000'000;
    /**
     * Deadlock watchdog: cycles of zero progress (no dispatch, no
     * retire, no memory delivery, no stream or store movement) before
     * the run is declared deadlocked and forensics are captured.
     * Must exceed every architectural latency (memLatency,
     * divLatency, scuStartupCycles); 0 disables the watchdog.
     */
    uint64_t watchdogWindow = 4096;
    /**
     * Chaos mode: when nonzero, seed a per-cycle perturbation of
     * timing-only parameters (memory latency jitter, port grants,
     * SCU startup, fetch width). Architectural results must be
     * identical to the deterministic run — the fuzz harness enforces
     * this; see DESIGN.md §11.
     */
    uint64_t chaosSeed = 0;
    size_t memBytes = 16u << 20;

    /** @name Observability (off by default: the hot loop stays lean) */
    /// @{
    /** Sample per-FIFO/queue occupancy histograms every cycle. */
    bool collectOccupancy = false;
    /**
     * Emit a per-cycle pipeline trace (Chrome trace_event format,
     * one counter track per unit/FIFO, one duration event per
     * stream) into this sink. The caller owns the writer and its
     * lifetime must cover the run.
     */
    obs::TraceWriter *trace = nullptr;
    /**
     * Flight recorder: once per cycle, feed per-window counts (unit
     * busy/stall-cause, FIFO occupancy sums, dispatch/retire rates,
     * live streams) into this interval sampler. Construct it with
     * simTimeSeriesChannels() — the simulator addresses channels by
     * that fixed layout. The caller owns the series and calls
     * nothing: the simulator advances and finishes it. Channel
     * totals sum exactly to the SimStats aggregates.
     */
    obs::TimeSeries *timeseries = nullptr;
    /**
     * Causal critical-path recorder: when set, the simulator appends
     * one DAG event per unit of forward progress (dispatch, execute,
     * FIFO push/pop, CC produce/consume, stream start/element/stop,
     * store commit, memory delivery), with edges typed by the stall
     * taxonomy and tagged with the remarks loop id. Pass a
     * freshly-constructed recorder; the simulator registers its
     * unit/cause/queue taxonomy and marks the end event when the run
     * finishes (also on faults, up to the last progress). The caller
     * owns the recorder and runs the analyses after the run.
     */
    obs::CritPath *critpath = nullptr;
    /// @}
};

/**
 * Channel layout for SimConfig::timeseries, in index order. The
 * cumulative channels reuse the exact dotted names SimStats::
 * exportCounters emits ("ieu.executed", "ifu.stall.cc_fifo_empty",
 * ...), so a consumer can verify per-window sums against the stats
 * document by name alone. Level channels ("occ.<series>" occupancy
 * sums and "scu.active" live-stream count) are per-cycle samples
 * whose window mean is count / window cycles.
 */
std::vector<std::string> simTimeSeriesChannels();

// StallCause and its name table live in wmsim/fault.h (included
// above) so the fault-forensics layer can label wait-for edges
// without a circular include.

/** Per-unit stall attribution: one bucket per cause. */
struct UnitStallStats
{
    uint64_t byCause[static_cast<size_t>(StallCause::kCount)] = {};

    uint64_t &operator[](StallCause c)
    {
        return byCause[static_cast<size_t>(c)];
    }
    uint64_t at(StallCause c) const
    {
        return byCause[static_cast<size_t>(c)];
    }
    /** Sum over all causes (InstQueueEmpty is tracked as idle, not here). */
    uint64_t total() const;
};

/** One sampled occupancy series (a FIFO or queue). */
struct OccupancySeries
{
    std::string name;     ///< e.g. "in_fifo.int0", "inst_q.feu"
    obs::Histogram hist;  ///< occupancy sampled once per cycle
};

/**
 * Cycles attributed to one source loop (joined on rtl::Inst::loopId,
 * the id the compiler's remark registry assigned).
 *
 * Every simulated cycle is attributed to exactly one bucket — the loop
 * id of the instruction at the fetch PC when the cycle begins, or -1
 * when the PC is outside every loop — so bucket cycles sum exactly to
 * SimStats::cycles. Unit stall causes observed during the cycle land
 * in the same bucket (merged over IFU/IEU/FEU in `stalls`), which is
 * what lets wmreport name each loop's dominant stall cause.
 */
struct LoopCycleStats
{
    int loopId = -1;             ///< -1 = outside every loop
    uint64_t cycles = 0;
    uint64_t ieuStallCycles = 0;
    uint64_t feuStallCycles = 0;
    uint64_t ifuStallCycles = 0;
    UnitStallStats stalls;       ///< per-cause, merged over all units

    /** The stall cause with the highest count, or None. */
    StallCause dominantStall() const;
};

/** Aggregate run statistics. */
struct SimStats
{
    uint64_t cycles = 0;
    uint64_t instsDispatched = 0;
    uint64_t ieuExecuted = 0;
    uint64_t feuExecuted = 0;
    uint64_t ifuExecuted = 0;
    uint64_t loadsIssued = 0;
    uint64_t storesCommitted = 0;
    uint64_t streamElementsIn = 0;
    uint64_t streamElementsOut = 0;
    uint64_t vectorElements = 0;
    uint64_t ieuStallCycles = 0;
    uint64_t feuStallCycles = 0;
    uint64_t ifuStallCycles = 0;

    /** @name Stall attribution (always on; sums match the totals above) */
    /// @{
    UnitStallStats ieuStalls;
    UnitStallStats feuStalls;
    UnitStallStats ifuStalls;
    uint64_t ieuIdleCycles = 0; ///< instruction queue empty
    uint64_t feuIdleCycles = 0;
    uint64_t scuStartupWaitCycles = 0;   ///< stream-cycles in startup
    uint64_t scuPortContentionCycles = 0;///< SCU issue beaten to ports
    uint64_t storePortContentionCycles = 0; ///< store commit blocked
    /// @}

    /** Occupancy histograms; empty unless SimConfig::collectOccupancy. */
    std::vector<OccupancySeries> occupancy;

    /**
     * Per-loop cycle attribution, sorted by loopId ascending (bucket
     * -1 first when present). Always collected; see LoopCycleStats.
     */
    std::vector<LoopCycleStats> loops;

    /**
     * Export every counter (and histogram summary stats) into @p reg
     * under dotted names: "ieu.executed", "ieu.stall.data_fifo_empty",
     * "scu.startup_wait_cycles", ... The registry is the single
     * serialization path for stats JSON.
     */
    void exportCounters(obs::CounterRegistry &reg) const;
};

/** Result of a simulation. */
struct SimResult
{
    bool ok = false;
    int64_t returnValue = 0;
    std::string error;
    /**
     * Typed fault classification: None when ok, RuntimeError for
     * program errors, Deadlock/Livelock from the watchdog and cycle
     * limit. `error` keeps a one-line rendering for callers that only
     * print strings.
     */
    SimFault fault = SimFault::None;
    /** Forensics; populated when fault is Deadlock or Livelock. */
    FaultReport faultReport;
    SimStats stats;
};

/**
 * Simulator instance: owns the flattened code and memory image.
 *
 * The program must be laid out (Program::layout) and lowered to WM
 * FIFO form. Memory can be inspected after the run for test oracles.
 */
class Simulator
{
  public:
    Simulator(const rtl::Program &prog, SimConfig config = {});

    /** Run main() to completion. */
    SimResult run();

    /** @name Post-run memory inspection */
    /// @{
    int64_t readInt(int64_t addr) const;
    double readDouble(int64_t addr) const;
    uint8_t readByte(int64_t addr) const;
    /// @}

  private:
    struct Impl;
    std::unique_ptr<Impl> impl_;

  public:
    ~Simulator();
};

/** One-call convenience: construct and run. */
SimResult simulate(const rtl::Program &prog, SimConfig config = {});

} // namespace wmstream::wmsim

#endif // WMSTREAM_WMSIM_SIM_H
