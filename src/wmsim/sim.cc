#include "wmsim/sim.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>

#include "support/diag.h"
#include "support/rng.h"
#include "support/str.h"

namespace wmstream::wmsim {

using rtl::DataType;
using rtl::Expr;
using rtl::ExprPtr;
using rtl::Inst;
using rtl::InstKind;
using rtl::Op;
using rtl::RegFile;
using rtl::UnitSide;

namespace {

/** A runtime value moving through FIFOs. */
struct Val
{
    bool isFloat = false;
    int64_t i = 0;
    double f = 0.0;
};

/** Which engine executes an instruction. */
enum class Engine : uint8_t { IFU, IEU, FEU, SCU };

bool
isCvtAssign(const Inst &inst)
{
    return inst.kind == InstKind::Assign &&
           inst.src->kind() == Expr::Kind::Un &&
           (inst.src->op() == Op::CvtIF || inst.src->op() == Op::CvtFI);
}

Engine
engineOf(const Inst &inst)
{
    switch (inst.kind) {
      case InstKind::Jump:
      case InstKind::CondJump:
      case InstKind::JumpStream:
      case InstKind::Call:
      case InstKind::Return:
      case InstKind::StreamStop:
        return Engine::IFU;
      case InstKind::StreamIn:
      case InstKind::StreamOut:
      case InstKind::VecOp:
        return Engine::SCU; // dispatched like streams (IFU handles it)
      case InstKind::Load:
      case InstKind::Store:
        return Engine::IEU;
      case InstKind::Assign: {
        if (isCvtAssign(inst))
            return Engine::IFU; // synchronizing conversion
        RegFile f = inst.dst->regFile();
        if (f == RegFile::Flt)
            return Engine::FEU;
        if (f == RegFile::CC)
            return inst.dst->regIndex() == 1 ? Engine::FEU : Engine::IEU;
        return Engine::IEU;
      }
    }
    return Engine::IEU;
}

struct RunError : std::runtime_error
{
    using std::runtime_error::runtime_error;
};

} // anonymous namespace

// stallCauseName lives in fault.cc with the rest of the fault layer.

uint64_t
UnitStallStats::total() const
{
    uint64_t sum = 0;
    for (uint64_t v : byCause)
        sum += v;
    return sum;
}

StallCause
LoopCycleStats::dominantStall() const
{
    size_t best = 0;
    uint64_t bestCount = 0;
    for (size_t c = 1; c < static_cast<size_t>(StallCause::kCount); ++c)
        if (stalls.byCause[c] > bestCount) {
            best = c;
            bestCount = stalls.byCause[c];
        }
    return static_cast<StallCause>(best);
}

void
SimStats::exportCounters(obs::CounterRegistry &reg) const
{
    reg.set("cycles", cycles);
    reg.set("insts_dispatched", instsDispatched);
    reg.set("loads_issued", loadsIssued);
    reg.set("stores_committed", storesCommitted);
    reg.set("stream.elements_in", streamElementsIn);
    reg.set("stream.elements_out", streamElementsOut);
    reg.set("vector_elements", vectorElements);

    auto unit = [&](const char *u, uint64_t executed, uint64_t stallTotal,
                    const UnitStallStats &stalls) {
        std::string p(u);
        reg.set(p + ".executed", executed);
        reg.set(p + ".stall_cycles", stallTotal);
        for (size_t c = 1; c < static_cast<size_t>(StallCause::kCount);
             ++c) {
            uint64_t v = stalls.byCause[c];
            if (v)
                reg.set(p + ".stall." +
                            stallCauseName(static_cast<StallCause>(c)),
                        v);
        }
    };
    unit("ieu", ieuExecuted, ieuStallCycles, ieuStalls);
    unit("feu", feuExecuted, feuStallCycles, feuStalls);
    unit("ifu", ifuExecuted, ifuStallCycles, ifuStalls);
    reg.set("ieu.idle_empty_cycles", ieuIdleCycles);
    reg.set("feu.idle_empty_cycles", feuIdleCycles);
    reg.set("scu.startup_wait_cycles", scuStartupWaitCycles);
    reg.set("scu.port_contention_cycles", scuPortContentionCycles);
    reg.set("store.port_contention_cycles", storePortContentionCycles);

    for (const OccupancySeries &s : occupancy) {
        reg.set("occupancy." + s.name + ".samples", s.hist.count());
        reg.set("occupancy." + s.name + ".max",
                static_cast<uint64_t>(s.hist.max()));
        reg.set("occupancy." + s.name + ".p50",
                static_cast<uint64_t>(s.hist.p50()));
        reg.set("occupancy." + s.name + ".p95",
                static_cast<uint64_t>(s.hist.p95()));
        reg.set("occupancy." + s.name + ".p99",
                static_cast<uint64_t>(s.hist.p99()));
    }

    // Per-loop buckets, "loop.<id>.*" ("loop.-1" = outside every loop).
    // Bucket cycles sum exactly to "cycles" (the attribution invariant
    // wmreport checks).
    for (const LoopCycleStats &l : loops) {
        std::string p = "loop." + std::to_string(l.loopId);
        reg.set(p + ".cycles", l.cycles);
        if (l.ieuStallCycles)
            reg.set(p + ".ieu_stall_cycles", l.ieuStallCycles);
        if (l.feuStallCycles)
            reg.set(p + ".feu_stall_cycles", l.feuStallCycles);
        if (l.ifuStallCycles)
            reg.set(p + ".ifu_stall_cycles", l.ifuStallCycles);
        for (size_t c = 1; c < static_cast<size_t>(StallCause::kCount);
             ++c) {
            uint64_t v = l.stalls.byCause[c];
            if (v)
                reg.set(p + ".stall." +
                            stallCauseName(static_cast<StallCause>(c)),
                        v);
        }
    }
}

namespace {

/**
 * Occupancy series order (fixed, also the sample order):
 * 0-3 in_fifo[side][f], 4-7 out_fifo[side][f], 8-9 cc_fifo[side],
 * 10-11 inst_q (ieu, feu), 12-13 store_q[side].
 */
constexpr int kNumOcc = 14;
const char *const kOccNames[kNumOcc] = {
    "in_fifo.int0",  "in_fifo.int1",  "in_fifo.flt0",  "in_fifo.flt1",
    "out_fifo.int0", "out_fifo.int1", "out_fifo.flt0", "out_fifo.flt1",
    "cc_fifo.int",   "cc_fifo.flt",   "inst_q.ieu",    "inst_q.feu",
    "store_q.int",   "store_q.flt",
};

/**
 * Time-series channel layout. The cumulative block is sampled as
 * end-of-cycle deltas against a previous-cycle snapshot, so window
 * counts telescope to the final aggregates exactly; the level block
 * (occupancies, live streams) is a per-cycle sum whose window mean is
 * count / window cycles. simTimeSeriesChannels() and
 * Impl::tsCumulative() must agree on this order.
 */
constexpr size_t kTsScalars = 17;
constexpr size_t kTsStallCauses =
    static_cast<size_t>(StallCause::kCount) - 1;
constexpr size_t kTsCumulative = kTsScalars + 3 * kTsStallCauses;
constexpr size_t kTsChannels =
    kTsCumulative + static_cast<size_t>(kNumOcc) + 1;

} // anonymous namespace

std::vector<std::string>
simTimeSeriesChannels()
{
    std::vector<std::string> names = {
        "insts_dispatched",
        "loads_issued",
        "stores_committed",
        "stream.elements_in",
        "stream.elements_out",
        "vector_elements",
        "ieu.executed",
        "ieu.stall_cycles",
        "feu.executed",
        "feu.stall_cycles",
        "ifu.executed",
        "ifu.stall_cycles",
        "ieu.idle_empty_cycles",
        "feu.idle_empty_cycles",
        "scu.startup_wait_cycles",
        "scu.port_contention_cycles",
        "store.port_contention_cycles",
    };
    WS_ASSERT(names.size() == kTsScalars, "channel layout drift");
    for (const char *u : {"ieu", "feu", "ifu"})
        for (size_t c = 1; c < static_cast<size_t>(StallCause::kCount);
             ++c)
            names.push_back(std::string(u) + ".stall." +
                            stallCauseName(static_cast<StallCause>(c)));
    for (int i = 0; i < kNumOcc; ++i)
        names.push_back(std::string("occ.") + kOccNames[i]);
    names.push_back("scu.active");
    WS_ASSERT(names.size() == kTsChannels, "channel layout drift");
    return names;
}

struct Simulator::Impl
{
    // ---- static program state ----
    const rtl::Program &prog;
    SimConfig cfg;
    struct FlatInst
    {
        const Inst *inst;
        int func;
        int64_t seqAtDispatch = 0; // scratch
    };
    std::vector<FlatInst> code;
    std::unordered_map<std::string, int64_t> funcEntry;
    std::vector<std::unordered_map<std::string, int64_t>> labelIdx;

    // ---- dynamic state ----
    std::vector<uint8_t> mem;
    int64_t rreg[32] = {};
    double freg[32] = {};

    std::deque<Val> inFifo[2][2];
    std::deque<Val> outFifo[2][2];
    std::deque<bool> ccFifo[2];

    struct QEntry
    {
        const Inst *inst;
        int64_t seq;
        /** Enqueue attributed to an active output stream at dispatch. */
        bool streamEnq = false;
        int32_t ev = -1; ///< critpath dispatch event
    };
    std::deque<QEntry> unitQ[2]; // 0 = IEU, 1 = FEU
    uint64_t unitBusyUntil[2] = {0, 0};

    struct ReadReq
    {
        uint64_t deliverAt;
        int64_t addr;
        int size;
        bool isFloat;
        int64_t seq;
        int scu = -1; // owning stream, or -1 for a scalar load
        int32_t ev = -1;   ///< critpath issue event
        int loop = -1;     ///< loop id of the issuing instruction
        bool ordered = false; ///< was ever held behind an older store
    };
    std::deque<ReadReq> inflight[2][2];

    struct StoreReq
    {
        int64_t addr;
        int size;
        int64_t seq;
        int32_t ev = -1; ///< critpath address-generation event
        int loop = -1;
    };
    std::deque<StoreReq> storeQ[2];

    struct Stream
    {
        bool active = false;
        bool input = true;
        int side = 0;
        int fifo = 0;
        int64_t base = 0;
        int64_t stride = 0;
        int64_t count = -1; ///< -1 = unbounded
        int64_t issued = 0; ///< in: reads issued
        int64_t done = 0;   ///< in: delivered; out: writes committed
        DataType type = DataType::I64;
        int64_t seq = 0;    ///< dispatch sequence
        bool closed = false;
        /**
         * For output streams: IFU dispatch sequence of each enqueue
         * already dispatched, indexed by cell position minus `done`.
         * Memory ordering: a load must wait only for cells whose
         * producing enqueue was dispatched before the load (true
         * dependences); cells whose enqueue is not yet dispatched
         * follow the load in program order (anti-dependences) and must
         * not stall it.
         */
        std::deque<int64_t> enqSeqs;
        int64_t dispatchedEnqueues = 0;
        uint64_t readyAt = 0; ///< SCU startup latency gate

        /** @name Critpath bookkeeping (unused when recording is off) */
        /// @{
        int loopId = -1;        ///< loop of the starting instruction
        int32_t startEv = -1;   ///< stream-start dispatch event
        int32_t lastIssueEv = -1; ///< serial chain through this SCU
        int32_t lastElemEv = -1;  ///< last delivery/write event
        /** Retire event of this *slot's* previous occupant. */
        int32_t slotRetireEv = -1;
        /// @}
    };
    std::vector<Stream> scus;

    /** Vector execution unit: one element-wise FIFO operation. */
    struct VeuState
    {
        bool active = false;
        Op op = Op::Add;
        bool copy = false;
        int dstSide = 0, dstFifo = 0;
        int s1Side = 0, s1Fifo = 0;
        bool src2IsFifo = false;
        int s2Side = 0, s2Fifo = 0;
        Val src2Val;
        int64_t remaining = 0;
    } veu;

    int64_t mirror[2][2] = {{-1, -1}, {-1, -1}};

    int64_t pc = 0;
    std::vector<int64_t> raStack;
    bool returned = false;
    uint64_t now = 0;
    int64_t seqCounter = 0;
    int portsUsed = 0;
    SimStats stats;
    std::string pendingError;
    bool trace = std::getenv("WS_TRACE") != nullptr;

    // ---- watchdog state ----
    /**
     * Progress events the SimStats counters miss: values delivered
     * from memory into input FIFOs (a scalar load's delivery bumps
     * nothing else) and stream read requests issued. Together with
     * the dispatch/retire/store/stream counters these make the
     * watchdog's progress sum monotone over every way the machine
     * can move.
     */
    uint64_t deliveredValues = 0;
    uint64_t scuReadsIssued = 0;
    uint64_t lastProgressSum = 0;
    uint64_t lastProgressCycle = 0;
    /** Last observed per-unit stall causes (for fault forensics). */
    StallCause lastUnitCause[2] = {StallCause::None, StallCause::None};
    StallCause lastIfuCause = StallCause::None;

    // ---- chaos state ----
    /** Timing-only perturbation; architectural results must not move. */
    bool chaos = false;
    support::Rng chaosRng{0};

    /** Per-request memory latency jitter under chaos (0 otherwise). */
    uint64_t
    chaosLatency()
    {
        return chaos ? chaosRng.nextBelow(4) : 0;
    }

    uint64_t
    progressSum() const
    {
        return stats.instsDispatched + stats.ifuExecuted +
               stats.ieuExecuted + stats.feuExecuted +
               stats.storesCommitted + stats.streamElementsIn +
               stats.streamElementsOut + stats.vectorElements +
               stats.loadsIssued + deliveredValues + scuReadsIssued;
    }

    // ---- observability state ----
    obs::Histogram occ[kNumOcc];

    /**
     * Cumulative-counter snapshot from the previous tsSample() call;
     * sized kTsCumulative when cfg.timeseries is set, else empty.
     */
    std::vector<uint64_t> tsPrev;

    /** Per-series last emitted trace counter value (dedup on change). */
    double traceLast[kNumOcc + 5];
    /** Trace track ids for the SCU slots; stream start bookkeeping. */
    std::vector<int> scuTid;
    std::vector<uint64_t> scuStartCycle;
    std::vector<std::string> scuEventName;
    std::vector<bool> scuWasActive;

    // ---- critical-path DAG recording ----
    /**
     * Alias of cfg.critpath; null when recording is off, which keeps
     * every instrumentation site behind one predictable branch.
     *
     * Mapping of machine actions to DAG events (one per unit of
     * forward progress, created in phase order so arena order is
     * topological):
     *  - IFU: one event per instruction the IFU processes (control
     *    transfer, sync conversion, stream start/stop, vec-op, or a
     *    dispatch into a unit queue), serially chained with latency
     *    1/fetchWidth.
     *  - IEU/FEU: one event per executed instruction, with deps on
     *    its dispatch (latency 1: dispatch is the last phase), the
     *    unit's previous exec (1, or divLatency after a divide), and
     *    every FIFO operand it pops.
     *  - mem: one event per delivered read (dep on the issue event
     *    with memLatency) and per committed store.
     *  - scu: one event per issued stream read / written element,
     *    chained at 1/scuBurst with a scu_startup dep on the start.
     *  - veu: one event per vector element, chained at 1/veuLanes.
     * Queue back-pressure is recorded as capacity deps against the 14
     * occupancy queues (kOccNames order); pops are recorded at the
     * consuming event so depth-changing what-ifs re-resolve honestly.
     */
    obs::CritPath *cp = nullptr;
    /** Unit ids (registered in the ctor). */
    uint8_t cpuIfu = 0, cpuIeu = 0, cpuFeu = 0, cpuScu = 0,
            cpuVeu = 0, cpuMem = 0, cpuEnd = 0;
    /** StallCause -> recorder cause id ([0] = reserved start). */
    uint8_t cpCause[static_cast<size_t>(StallCause::kCount)] = {};
    /** Model-edge causes outside the stall taxonomy. */
    uint8_t cpcExec = 0, cpcFetch = 0, cpcMemLat = 0, cpcMemOrder = 0,
            cpcScuStartup = 0, cpcScuIssue = 0, cpcVeuLane = 0,
            cpcStoreAddr = 0, cpcDrain = 0;
    /** Queue ids, kOccNames index order. */
    int cpQ[kNumOcc] = {};

    /** Producer event per buffered value, parallel to the FIFOs. */
    std::deque<int32_t> inFifoEv[2][2];
    std::deque<int32_t> outFifoEv[2][2];
    std::deque<int32_t> ccFifoEv[2];

    int32_t cpCurEv = -1;      ///< latest event (deps attach to it)
    int32_t lastIfuEv = -1;
    int32_t lastExecEv[2] = {-1, -1};
    float nextSerialLat[2] = {1.0f, 1.0f}; ///< divLatency after a div
    int32_t lastStoreCommitEv = -1;
    int32_t lastDeliveryEv = -1;
    int32_t lastVeuEv = -1;
    int32_t veuOpEv = -1;      ///< VecOp dispatch event
    int32_t veuPrevElemEv = -1;
    int veuLoop = -1;
    /** Retire event of the last retired stream per [side][fifo][in]. */
    int32_t lastRetire[2][2][2] = {{{-1, -1}, {-1, -1}},
                                   {{-1, -1}, {-1, -1}}};
    /** Last stall observed per unit since its previous exec. */
    StallCause unitWaitCause[2] = {StallCause::None, StallCause::None};
    /** Last IFU stall observed before the next IFU event. */
    StallCause ifuWaitCauseCp = StallCause::None;

    int cpQIn(int s, int f) const { return cpQ[s * 2 + f]; }
    int cpQOut(int s, int f) const { return cpQ[4 + s * 2 + f]; }
    int cpQCc(int s) const { return cpQ[8 + s]; }
    int cpQInst(int u) const { return cpQ[10 + u]; }
    int cpQStore(int s) const { return cpQ[12 + s]; }

    uint8_t
    cpWait(StallCause c) const
    {
        return c == StallCause::None ? 0
                                     : cpCause[static_cast<size_t>(c)];
    }

    int32_t
    cpEvent(uint8_t unit, int loop, uint8_t wait)
    {
        cpCurEv = cp->event(now, unit, loop, wait);
        return cpCurEv;
    }

    /**
     * Record the latest event popping one value from inFifo[s][f]:
     * a data dep on the producer plus the capacity pop that frees the
     * slot. Called right where the simulator pops the value deque.
     */
    void
    cpPopIn(int s, int f)
    {
        int32_t prod = -1;
        if (!inFifoEv[s][f].empty()) {
            prod = inFifoEv[s][f].front();
            inFifoEv[s][f].pop_front();
        }
        cp->dep(prod,
                cpCause[static_cast<size_t>(StallCause::DataFifoEmpty)],
                0.0f);
        cp->pop(cpQIn(s, f), cpCurEv);
    }

    /** Same for outFifo[s][f] (store commit, out-stream write). */
    void
    cpPopOut(int s, int f)
    {
        int32_t prod = -1;
        if (!outFifoEv[s][f].empty()) {
            prod = outFifoEv[s][f].front();
            outFifoEv[s][f].pop_front();
        }
        cp->dep(prod,
                cpCause[static_cast<size_t>(StallCause::DataFifoEmpty)],
                0.0f);
        cp->pop(cpQOut(s, f), cpCurEv);
    }

    /**
     * Note a register write by event @p ev that lands in a CC or
     * output FIFO: capacity dep plus producer bookkeeping. Pops for
     * these queues happen in *later* phases of the cycle, so a pop at
     * cycle t frees the slot for a push at t+1 (latency 1).
     */
    void
    cpNoteWrite(const ExprPtr &dst, int32_t ev)
    {
        RegFile f = dst->regFile();
        int idx = dst->regIndex();
        if (f == RegFile::CC) {
            int s = idx == 1 ? 1 : 0;
            cp->pushDep(
                cpQCc(s),
                cpCause[static_cast<size_t>(StallCause::CcFifoFull)],
                1.0f);
            ccFifoEv[s].push_back(ev);
            return;
        }
        if (idx > 1 || (f != RegFile::Int && f != RegFile::Flt))
            return;
        int s = f == RegFile::Flt ? 1 : 0;
        cp->pushDep(
            cpQOut(s, idx),
            cpCause[static_cast<size_t>(StallCause::DataFifoFull)],
            1.0f);
        outFifoEv[s][idx].push_back(ev);
    }

    /** Exec event for the head of unit queue @p u (IEU/FEU). */
    int32_t
    cpUnitExecEvent(int u, const Inst &inst)
    {
        uint8_t wait = cpWait(unitWaitCause[u]);
        unitWaitCause[u] = StallCause::None;
        int32_t ev = cpEvent(u ? cpuFeu : cpuIeu, inst.loopId, wait);
        // Dispatch happens in the cycle's *last* phase, so the
        // earliest exec is the next cycle (latency 1).
        cp->dep(unitQ[u].front().ev,
                cpCause[static_cast<size_t>(
                    StallCause::InstQueueEmpty)],
                1.0f);
        cp->dep(lastExecEv[u], cpcExec, nextSerialLat[u]);
        nextSerialLat[u] = 1.0f;
        lastExecEv[u] = ev;
        cp->pop(cpQInst(u), ev);
        return ev;
    }

    /** IFU event for the instruction at pc (serial fetch chain). */
    int32_t
    cpIfuEvent(const Inst &inst)
    {
        uint8_t wait = cpWait(ifuWaitCauseCp);
        ifuWaitCauseCp = StallCause::None;
        int32_t ev = cpEvent(cpuIfu, inst.loopId, wait);
        cp->dep(lastIfuEv, cpcFetch,
                1.0f / static_cast<float>(cfg.fetchWidth));
        lastIfuEv = ev;
        return ev;
    }

    /** Mark stream @p s retired by @p ev (slot and FIFO ownership). */
    void
    cpRetire(Stream &s, int32_t ev)
    {
        int32_t r = ev >= 0 ? ev : s.startEv;
        lastRetire[s.side][s.fifo][s.input ? 1 : 0] = r;
        s.slotRetireEv = r;
    }

    Impl(const rtl::Program &p, SimConfig c)
        : prog(p), cfg(c), chaos(c.chaosSeed != 0),
          chaosRng(c.chaosSeed)
    {
        mem.assign(cfg.memBytes, 0);
        scus.resize(cfg.numSCUs);
        flatten();
        loadImage();
        rreg[30] = static_cast<int64_t>(cfg.memBytes) - 64;
        for (double &v : traceLast)
            v = -1.0;
        if (cfg.trace) {
            scuStartCycle.resize(scus.size(), 0);
            scuEventName.resize(scus.size());
            scuWasActive.resize(scus.size(), false);
            for (size_t i = 0; i < scus.size(); ++i)
                scuTid.push_back(
                    cfg.trace->track(strFormat("SCU %zu", i)));
        }
        if (cfg.timeseries) {
            WS_ASSERT(cfg.timeseries->channels() == kTsChannels,
                      "time series not built from "
                      "simTimeSeriesChannels()");
            tsPrev.assign(kTsCumulative, 0);
        }
        if (cfg.critpath) {
            cp = cfg.critpath;
            cpuIfu = cp->unit("ifu");
            cpuIeu = cp->unit("ieu");
            cpuFeu = cp->unit("feu");
            cpuScu = cp->unit("scu");
            cpuVeu = cp->unit("veu");
            cpuMem = cp->unit("mem");
            cpuEnd = cp->unit("end");
            cpCause[0] = obs::CritPath::kCauseStart;
            for (size_t c2 = 1;
                 c2 < static_cast<size_t>(StallCause::kCount); ++c2)
                cpCause[c2] = cp->cause(
                    stallCauseName(static_cast<StallCause>(c2)));
            cpcExec = cp->cause("execute");
            cpcFetch = cp->cause("fetch");
            cpcMemLat = cp->cause("mem_latency");
            cpcMemOrder = cp->cause("mem_order");
            cpcScuStartup = cp->cause("scu_startup");
            cpcScuIssue = cp->cause("scu_issue");
            cpcVeuLane = cp->cause("veu_lane");
            cpcStoreAddr = cp->cause("store_addr");
            cpcDrain = cp->cause("drain");
            for (int i = 0; i < kNumOcc; ++i) {
                int depth = i < 8    ? cfg.dataFifoDepth
                            : i < 10 ? cfg.ccFifoDepth
                            : i < 12 ? cfg.instQueueDepth
                                     : cfg.storeQueueDepth;
                cpQ[i] = cp->queue(kOccNames[i], depth, i < 8);
            }
        }
    }

    /** Current occupancy of series @p i (see kOccNames). */
    size_t
    occValue(int i) const
    {
        if (i < 4)
            return inFifo[i / 2][i % 2].size();
        if (i < 8)
            return outFifo[(i - 4) / 2][(i - 4) % 2].size();
        if (i < 10)
            return ccFifo[i - 8].size();
        if (i < 12)
            return unitQ[i - 10].size();
        return storeQ[i - 12].size();
    }

    void
    sampleOccupancy()
    {
        for (int i = 0; i < kNumOcc; ++i)
            occ[i].add(static_cast<int64_t>(occValue(i)));
    }

    /**
     * Emit this cycle's trace samples: occupancy / activity counters
     * (deduplicated on change) and stream duration events on the SCU
     * tracks.
     */
    void
    traceCycle(uint64_t dispatched, uint64_t ieuExec, uint64_t feuExec)
    {
        obs::TraceWriter &tw = *cfg.trace;
        auto sample = [&](int slot, const char *name, double v) {
            if (traceLast[slot] != v) {
                traceLast[slot] = v;
                tw.counter(name, now, v);
            }
        };
        for (int i = 0; i < kNumOcc; ++i)
            sample(i, kOccNames[i],
                   static_cast<double>(occValue(i)));
        sample(kNumOcc + 0, "ifu.dispatched",
               static_cast<double>(dispatched));
        sample(kNumOcc + 1, "busy.ieu", static_cast<double>(ieuExec));
        sample(kNumOcc + 2, "busy.feu", static_cast<double>(feuExec));
        sample(kNumOcc + 3, "busy.veu", veu.active ? 1.0 : 0.0);
        int activeStreams = 0;
        for (const Stream &s : scus)
            activeStreams += s.active ? 1 : 0;
        sample(kNumOcc + 4, "scu.active",
               static_cast<double>(activeStreams));

        for (size_t i = 0; i < scus.size(); ++i) {
            const Stream &s = scus[i];
            if (s.active && !scuWasActive[i]) {
                scuStartCycle[i] = now;
                scuEventName[i] = strFormat(
                    "%s %s.f%d n=%lld stride=%lld",
                    s.input ? "Sin" : "Sout",
                    s.side ? "flt" : "int", s.fifo,
                    static_cast<long long>(s.count),
                    static_cast<long long>(s.stride));
            } else if (!s.active && scuWasActive[i]) {
                tw.complete(scuTid[i], scuEventName[i],
                            scuStartCycle[i],
                            std::max<uint64_t>(now - scuStartCycle[i],
                                               1));
            }
            scuWasActive[i] = s.active;
        }
    }

    /**
     * Fill @p out with the cumulative counters in channel order (the
     * first kTsCumulative entries of simTimeSeriesChannels()).
     */
    void
    tsCumulative(uint64_t out[kTsCumulative]) const
    {
        size_t i = 0;
        out[i++] = stats.instsDispatched;
        out[i++] = stats.loadsIssued;
        out[i++] = stats.storesCommitted;
        out[i++] = stats.streamElementsIn;
        out[i++] = stats.streamElementsOut;
        out[i++] = stats.vectorElements;
        out[i++] = stats.ieuExecuted;
        out[i++] = stats.ieuStallCycles;
        out[i++] = stats.feuExecuted;
        out[i++] = stats.feuStallCycles;
        out[i++] = stats.ifuExecuted;
        out[i++] = stats.ifuStallCycles;
        out[i++] = stats.ieuIdleCycles;
        out[i++] = stats.feuIdleCycles;
        out[i++] = stats.scuStartupWaitCycles;
        out[i++] = stats.scuPortContentionCycles;
        out[i++] = stats.storePortContentionCycles;
        const UnitStallStats *units[3] = {&stats.ieuStalls,
                                          &stats.feuStalls,
                                          &stats.ifuStalls};
        for (const UnitStallStats *u : units)
            for (size_t c = 1;
                 c < static_cast<size_t>(StallCause::kCount); ++c)
                out[i++] = u->byCause[c];
        WS_ASSERT(i == kTsCumulative, "channel layout drift");
    }

    /**
     * Flight-recorder sample at the end of cycle `now`: cumulative
     * deltas against the previous snapshot plus the level channels.
     * Deltas telescope, so per-window sums equal the end-of-run
     * aggregates exactly — the invariant wmreport --timeline checks.
     */
    void
    tsSample()
    {
        obs::TimeSeries &ts = *cfg.timeseries;
        ts.advanceTo(now);
        uint64_t cum[kTsCumulative];
        tsCumulative(cum);
        for (size_t i = 0; i < kTsCumulative; ++i) {
            uint64_t d = cum[i] - tsPrev[i];
            if (d) {
                ts.add(i, d);
                tsPrev[i] = cum[i];
            }
        }
        for (int i = 0; i < kNumOcc; ++i) {
            size_t v = occValue(i);
            if (v)
                ts.add(kTsCumulative + static_cast<size_t>(i),
                       static_cast<uint64_t>(v));
        }
        uint64_t active = 0;
        for (const Stream &s : scus)
            active += s.active ? 1 : 0;
        if (active)
            ts.add(kTsChannels - 1, active);
    }

    /** Close out duration events for streams still active at exit. */
    void
    traceFinish()
    {
        if (!cfg.trace)
            return;
        for (size_t i = 0; i < scus.size(); ++i)
            if (scuWasActive[i])
                cfg.trace->complete(
                    scuTid[i], scuEventName[i], scuStartCycle[i],
                    std::max<uint64_t>(now - scuStartCycle[i], 1));
    }

    void
    flatten()
    {
        int fi = 0;
        for (const auto &fp : prog.functions()) {
            funcEntry[fp->name()] = static_cast<int64_t>(code.size());
            labelIdx.emplace_back();
            for (const auto &bp : fp->blocks()) {
                labelIdx[fi][bp->label()] =
                    static_cast<int64_t>(code.size());
                for (const Inst &inst : bp->insts)
                    code.push_back({&inst, fi, 0});
                // A block that falls off the end of the function is a
                // front-end bug; the expander always terminates.
            }
            ++fi;
        }
    }

    void
    loadImage()
    {
        for (const auto &g : prog.globals()) {
            WS_ASSERT(g.address >= 0, "program not laid out");
            // Globals that do not fit the configured memory are a
            // property of the user's program (e.g. a huge array), not
            // an internal invariant: fail the run gracefully.
            if (g.address + g.size >
                    static_cast<int64_t>(mem.size())) {
                pendingError = strFormat(
                    "global '%s' (%lld bytes at %lld) exceeds "
                    "simulated memory (%zu bytes); raise "
                    "SimConfig::memBytes or shrink the data",
                    g.name.c_str(), static_cast<long long>(g.size),
                    static_cast<long long>(g.address), mem.size());
                return;
            }
            if (!g.init.empty())
                std::memcpy(&mem[g.address], g.init.data(),
                            g.init.size());
        }
    }

    // ---- memory helpers ----
    void
    checkAddr(int64_t addr, int size)
    {
        if (addr < 0 || addr + size > static_cast<int64_t>(mem.size()))
            throw RunError(strFormat("memory access out of bounds: %lld",
                                     static_cast<long long>(addr)));
    }

    Val
    memRead(int64_t addr, DataType t)
    {
        int size = rtl::dataTypeSize(t);
        checkAddr(addr, size);
        Val v;
        if (rtl::isFloatType(t)) {
            v.isFloat = true;
            double d;
            std::memcpy(&d, &mem[addr], 8);
            v.f = d;
        } else if (size == 8) {
            std::memcpy(&v.i, &mem[addr], 8);
        } else if (size == 1) {
            v.i = mem[addr];
        } else {
            int64_t x = 0;
            std::memcpy(&x, &mem[addr], size);
            v.i = x;
        }
        return v;
    }

    void
    memWrite(int64_t addr, DataType t, const Val &v)
    {
        int size = rtl::dataTypeSize(t);
        checkAddr(addr, size);
        if (rtl::isFloatType(t)) {
            double d = v.isFloat ? v.f : static_cast<double>(v.i);
            std::memcpy(&mem[addr], &d, 8);
        } else {
            int64_t x = v.isFloat ? static_cast<int64_t>(v.f) : v.i;
            std::memcpy(&mem[addr], &x, size);
        }
    }

    // ---- register / FIFO access during evaluation ----

    /** Count FIFO reads per (side, fifo) required by @p e. */
    void
    fifoNeeds(const ExprPtr &e, int needs[2][2])
    {
        if (!e)
            return;
        if (e->kind() == Expr::Kind::Reg) {
            RegFile f = e->regFile();
            int idx = e->regIndex();
            if ((f == RegFile::Int || f == RegFile::Flt) &&
                    (idx == 0 || idx == 1)) {
                ++needs[f == RegFile::Flt ? 1 : 0][idx];
            }
            return;
        }
        fifoNeeds(e->lhs(), needs);
        if (e->kind() == Expr::Kind::Bin)
            fifoNeeds(e->rhs(), needs);
    }

    /** Evaluate @p e, popping FIFO operands in DFS order. */
    Val
    eval(const ExprPtr &e)
    {
        switch (e->kind()) {
          case Expr::Kind::Const: {
            Val v;
            if (rtl::isFloatType(e->type())) {
                v.isFloat = true;
                v.f = e->fval();
            } else {
                v.i = e->ival();
            }
            return v;
          }
          case Expr::Kind::Sym: {
            Val v;
            v.i = prog.globalAddress(e->symbol()) + e->symOffset();
            return v;
          }
          case Expr::Kind::Reg: {
            RegFile f = e->regFile();
            int idx = e->regIndex();
            Val v;
            if (f == RegFile::Flt) {
                v.isFloat = true;
                if (idx == 31) {
                    v.f = 0.0;
                } else if (idx == 0 || idx == 1) {
                    WS_ASSERT(!inFifo[1][idx].empty(),
                              "FIFO underflow (availability pre-checked)");
                    v = inFifo[1][idx].front();
                    inFifo[1][idx].pop_front();
                    if (cp)
                        cpPopIn(1, idx);
                    v.isFloat = true;
                } else {
                    v.f = freg[idx];
                }
            } else {
                if (idx == 31) {
                    v.i = 0;
                } else if (idx == 0 || idx == 1) {
                    WS_ASSERT(!inFifo[0][idx].empty(),
                              "FIFO underflow (availability pre-checked)");
                    v = inFifo[0][idx].front();
                    inFifo[0][idx].pop_front();
                    if (cp)
                        cpPopIn(0, idx);
                    v.isFloat = false;
                } else {
                    v.i = rreg[idx];
                }
            }
            return v;
          }
          case Expr::Kind::Mem: {
            Val a = eval(e->addr());
            return memRead(a.i, e->type());
          }
          case Expr::Kind::Un: {
            Val x = eval(e->lhs());
            Val v;
            switch (e->op()) {
              case Op::Neg:
                if (x.isFloat) {
                    v.isFloat = true;
                    v.f = -x.f;
                } else {
                    v.i = -x.i;
                }
                return v;
              case Op::Not:
                v.i = ~x.i;
                return v;
              case Op::CvtIF:
                v.isFloat = true;
                v.f = static_cast<double>(x.i);
                return v;
              case Op::CvtFI:
                v.i = static_cast<int64_t>(x.f);
                return v;
              case Op::CvtWiden:
                return x;
              default:
                throw RunError("bad unary operator in RTL");
            }
          }
          case Expr::Kind::Bin: {
            Val l = eval(e->lhs());
            Val r = eval(e->rhs());
            Val v;
            bool flt = l.isFloat || r.isFloat;
            if (flt) {
                double a = l.isFloat ? l.f : static_cast<double>(l.i);
                double b = r.isFloat ? r.f : static_cast<double>(r.i);
                switch (e->op()) {
                  case Op::Add: v.isFloat = true; v.f = a + b; return v;
                  case Op::Sub: v.isFloat = true; v.f = a - b; return v;
                  case Op::Mul: v.isFloat = true; v.f = a * b; return v;
                  case Op::Div:
                    if (b == 0.0)
                        throw RunError("floating divide by zero");
                    v.isFloat = true;
                    v.f = a / b;
                    return v;
                  case Op::Eq: v.i = a == b; return v;
                  case Op::Ne: v.i = a != b; return v;
                  case Op::Lt: v.i = a < b; return v;
                  case Op::Le: v.i = a <= b; return v;
                  case Op::Gt: v.i = a > b; return v;
                  case Op::Ge: v.i = a >= b; return v;
                  default:
                    throw RunError("bad float operator in RTL");
                }
            }
            int64_t a = l.i, b = r.i;
            auto u = [](int64_t x) { return static_cast<uint64_t>(x); };
            switch (e->op()) {
              case Op::Add: v.i = static_cast<int64_t>(u(a) + u(b)); break;
              case Op::Sub: v.i = static_cast<int64_t>(u(a) - u(b)); break;
              case Op::Mul: v.i = static_cast<int64_t>(u(a) * u(b)); break;
              case Op::Div:
                if (b == 0)
                    throw RunError("integer divide by zero");
                v.i = a / b;
                break;
              case Op::Rem:
                if (b == 0)
                    throw RunError("integer remainder by zero");
                v.i = a % b;
                break;
              case Op::And: v.i = a & b; break;
              case Op::Or: v.i = a | b; break;
              case Op::Xor: v.i = a ^ b; break;
              case Op::Shl: v.i = a << (b & 63); break;
              case Op::Shr:
                v.i = static_cast<int64_t>(u(a) >> (b & 63));
                break;
              case Op::Sar: v.i = a >> (b & 63); break;
              case Op::Eq: v.i = a == b; break;
              case Op::Ne: v.i = a != b; break;
              case Op::Lt: v.i = a < b; break;
              case Op::Le: v.i = a <= b; break;
              case Op::Gt: v.i = a > b; break;
              case Op::Ge: v.i = a >= b; break;
              default:
                throw RunError("bad integer operator in RTL");
            }
            return v;
          }
        }
        throw RunError("bad expression in RTL");
    }

    void
    writeReg(const ExprPtr &dst, const Val &v)
    {
        RegFile f = dst->regFile();
        int idx = dst->regIndex();
        if (f == RegFile::CC) {
            ccFifo[idx == 1 ? 1 : 0].push_back(v.isFloat ? v.f != 0.0
                                                         : v.i != 0);
            return;
        }
        if (idx == 31)
            return; // hardwired zero
        if (idx == 0 || idx == 1) {
            // Enqueue to the output FIFO.
            Val out = v;
            if (f == RegFile::Flt) {
                out.isFloat = true;
                if (!v.isFloat)
                    out.f = static_cast<double>(v.i);
                outFifo[1][idx].push_back(out);
            } else {
                out.isFloat = false;
                if (v.isFloat)
                    out.i = static_cast<int64_t>(v.f);
                outFifo[0][idx].push_back(out);
            }
            return;
        }
        if (f == RegFile::Flt)
            freg[idx] = v.isFloat ? v.f : static_cast<double>(v.i);
        else
            rreg[idx] = v.isFloat ? static_cast<int64_t>(v.f) : v.i;
    }

    // ---- store-ordering checks ----

    /** Is there a pending store older than @p seq overlapping the range? */
    bool
    olderStorePending(int64_t addr, int size, int64_t seq)
    {
        for (int s = 0; s < 2; ++s)
            for (const StoreReq &st : storeQ[s])
                if (st.seq < seq && st.addr < addr + size &&
                        addr < st.addr + st.size) {
                    return true;
                }
        for (const Stream &scu : scus) {
            if (!scu.active || scu.input)
                continue;
            // Pending cells: positions [done, dispatchedEnqueues). A
            // cell stalls the access only when its producing enqueue
            // was dispatched before the access (true dependence).
            int64_t limit = scu.dispatchedEnqueues;
            int esz = rtl::dataTypeSize(scu.type);
            if (scu.stride == 0)
                continue;
            // Only a handful of positions can overlap the access;
            // enumerate the candidate k range analytically.
            int64_t s = scu.stride;
            int64_t first = (addr - esz + 1) - scu.base;
            int64_t last = (addr + size - 1) - scu.base;
            if (s < 0)
                std::swap(first, last);
            auto floorDiv = [](int64_t a, int64_t b) {
                int64_t q = a / b;
                if ((a % b != 0) && ((a < 0) != (b < 0)))
                    --q;
                return q;
            };
            int64_t kLo = floorDiv(first + (s > 0 ? s - 1 : s + 1), s);
            int64_t kHi = floorDiv(last, s);
            if (kLo > kHi)
                std::swap(kLo, kHi);
            kLo = std::max<int64_t>(kLo - 1, scu.done);
            kHi = std::min<int64_t>(kHi + 1, limit - 1);
            for (int64_t k = kLo; k <= kHi; ++k) {
                int64_t cell = scu.base + k * scu.stride;
                if (cell < addr + size && addr < cell + esz) {
                    size_t idx = static_cast<size_t>(k - scu.done);
                    if (idx < scu.enqSeqs.size() &&
                            scu.enqSeqs[idx] < seq) {
                        return true;
                    }
                }
            }
        }
        return false;
    }

    // ---- stream helpers ----

    Stream *
    findStream(int side, int fifo, bool input)
    {
        for (Stream &s : scus)
            if (s.active && s.side == side && s.fifo == fifo &&
                    s.input == input) {
                return &s;
            }
        return nullptr;
    }

    void
    applyStreamStop(const Inst &inst)
    {
        int side = inst.side == UnitSide::Flt ? 1 : 0;
        bool input = inst.when;
        Stream *s = findStream(side, inst.fifo, input);
        if (!s)
            return; // already finished: a stop is idempotent
        if (input) {
            // Cancel: discard prefetched and in-flight data.
            s->active = false;
            if (cp) {
                // The discarded values (buffered and still in flight)
                // were all capacity pushes; record the stop event as
                // their freeing pop so ordinal bookkeeping matches
                // the machine's occupancy.
                // Scalar loads reserve no slot until delivery, so
                // only stream requests count as outstanding pushes.
                size_t discarded = inFifo[side][inst.fifo].size();
                for (const ReadReq &rq : inflight[side][inst.fifo])
                    if (rq.scu >= 0)
                        ++discarded;
                for (size_t k = 0; k < discarded; ++k)
                    cp->pop(cpQIn(side, inst.fifo), cpCurEv);
                inFifoEv[side][inst.fifo].clear();
                cpRetire(*s, cpCurEv);
            }
            inFifo[side][inst.fifo].clear();
            inflight[side][inst.fifo].clear();
        } else {
            // Output: accept no more data; drain what is enqueued.
            s->closed = true;
        }
    }

    // ---- per-cycle phases ----

    void
    deliverReads()
    {
        for (int side = 0; side < 2; ++side) {
            for (int f = 0; f < 2; ++f) {
                auto &q = inflight[side][f];
                while (!q.empty()) {
                    ReadReq &req = q.front();
                    if (req.deliverAt > now)
                        break;
                    if (req.scu >= 0 && !scus[req.scu].active) {
                        // Stream cancelled after retiring via the
                        // out-of-bounds clamp: free the reserved slot.
                        if (cp) {
                            int32_t ev = cpEvent(
                                cpuMem, scus[req.scu].loopId, 0);
                            cp->dep(ev >= 0 ? req.ev : -1, cpcMemLat,
                                    static_cast<float>(
                                        cfg.memLatency));
                            cp->pop(cpQIn(side, f), ev);
                        }
                        q.pop_front(); // stream cancelled: discard
                        continue;
                    }
                    if (olderStorePending(req.addr, req.size,
                                          req.seq)) {
                        req.ordered = true;
                        break;
                    }
                    if (static_cast<int>(inFifo[side][f].size()) >=
                            cfg.dataFifoDepth) {
                        break;
                    }
                    Val v = memRead(req.addr,
                                    req.isFloat
                                        ? DataType::F64
                                        : (req.size == 8 ? DataType::I64
                                           : req.size == 1
                                               ? DataType::I8
                                               : DataType::I32));
                    inFifo[side][f].push_back(v);
                    if (cp) {
                        int32_t ev = cpEvent(
                            cpuMem,
                            req.scu >= 0 ? scus[req.scu].loopId
                                         : req.loop,
                            0);
                        cp->dep(req.ev, cpcMemLat,
                                static_cast<float>(cfg.memLatency));
                        if (req.ordered)
                            // Held behind an older overlapping store;
                            // the most recent commit bounds the wait.
                            cp->dep(lastStoreCommitEv, cpcMemOrder,
                                    1.0f);
                        if (req.scu < 0)
                            // Scalar loads reserve their FIFO slot at
                            // delivery; the freeing pop (stepUnit, a
                            // later phase) enables delivery next
                            // cycle.
                            cp->pushDep(
                                cpQIn(side, f),
                                cpCause[static_cast<size_t>(
                                    StallCause::DataFifoFull)],
                                1.0f);
                        inFifoEv[side][f].push_back(ev);
                        lastDeliveryEv = ev;
                        if (req.scu >= 0)
                            scus[req.scu].lastElemEv = ev;
                    }
                    ++deliveredValues;
                    if (trace)
                        std::fprintf(stderr,
                                     "[%llu] deliver side=%d f=%d addr=%lld "
                                     "val=%g/%lld scu=%d\n",
                                     (unsigned long long)now, side, f,
                                     (long long)req.addr, v.f,
                                     (long long)v.i, req.scu);
                    if (req.scu >= 0) {
                        ++scus[req.scu].done;
                        ++stats.streamElementsIn;
                    }
                    q.pop_front();
                }
            }
        }
    }

    void
    commitStores()
    {
        for (int side = 0; side < 2; ++side) {
            if (portsUsed >= cfg.memPorts) {
                if (!storeQ[0].empty() || !storeQ[1].empty())
                    ++stats.storePortContentionCycles;
                return;
            }
            if (storeQ[side].empty())
                continue;
            // Output FIFO 0 feeds scalar stores unless a stream claims
            // it (the compiler prevents that combination).
            if (findStream(side, 0, /*input=*/false))
                continue;
            if (outFifo[side][0].empty())
                continue;
            StoreReq st = storeQ[side].front();
            Val v = outFifo[side][0].front();
            DataType t = side == 1
                             ? DataType::F64
                             : (st.size == 8 ? DataType::I64
                                : st.size == 1 ? DataType::I8
                                               : DataType::I32);
            memWrite(st.addr, t, v);
            if (cp) {
                // Commit runs after stepUnit in the same cycle, so
                // both the address generation and the data enqueue
                // can commit the cycle they execute (latency 0).
                int32_t ev = cpEvent(cpuMem, st.loop, 0);
                cp->dep(st.ev, cpcStoreAddr, 0.0f);
                cpPopOut(side, 0);
                cp->pop(cpQStore(side), ev);
                lastStoreCommitEv = ev;
            }
            storeQ[side].pop_front();
            outFifo[side][0].pop_front();
            ++portsUsed;
            ++stats.storesCommitted;
        }
    }

    void
    stepSCUs()
    {
        for (size_t i = 0; i < scus.size(); ++i) {
            Stream &s = scus[i];
            if (!s.active)
                continue;
            if (s.readyAt > now) {
                ++stats.scuStartupWaitCycles;
                continue; // still spinning up
            }
            if (portsUsed >= cfg.memPorts) {
                ++stats.scuPortContentionCycles;
                break;
            }
            if (s.input) {
                if (s.closed) {
                    s.active = false;
                    if (cp)
                        cpRetire(s, s.lastElemEv);
                    continue;
                }
                int64_t limit = s.count >= 0 ? s.count
                                             : INT64_MAX / 2;
                for (int burst = 0; burst < cfg.scuBurst; ++burst) {
                    if (portsUsed >= cfg.memPorts)
                        break;
                    if (s.issued >= limit)
                        break;
                    int inflightHere = static_cast<int>(
                        inflight[s.side][s.fifo].size());
                    int fifoHere = static_cast<int>(
                        inFifo[s.side][s.fifo].size());
                    if (inflightHere + fifoHere >= cfg.dataFifoDepth)
                        break; // no space reserved
                    ReadReq req;
                    req.deliverAt = now + cfg.memLatency +
                                    chaosLatency();
                    req.addr = s.base + s.issued * s.stride;
                    req.size = rtl::dataTypeSize(s.type);
                    req.isFloat = rtl::isFloatType(s.type);
                    req.seq = s.seq;
                    req.scu = static_cast<int>(i);
                    // Bounds are checked at delivery; unbounded streams
                    // may legitimately run past the data they will
                    // never deliver, so clamp errors here.
                    if (req.addr < 0 ||
                            req.addr + req.size >
                                static_cast<int64_t>(mem.size())) {
                        s.closed = true; // stop prefetching
                        break;
                    }
                    if (cp) {
                        int32_t ev = cpEvent(cpuScu, s.loopId, 0);
                        if (s.lastIssueEv >= 0)
                            cp->dep(s.lastIssueEv, cpcScuIssue,
                                    1.0f / static_cast<float>(
                                               cfg.scuBurst));
                        else
                            cp->dep(s.startEv, cpcScuStartup,
                                    static_cast<float>(
                                        cfg.scuStartupCycles));
                        // Issue reserves the FIFO slot; the freeing
                        // pop (stepUnit, an earlier phase) enables
                        // issue the same cycle.
                        cp->pushDep(
                            cpQIn(s.side, s.fifo),
                            cpCause[static_cast<size_t>(
                                StallCause::DataFifoFull)],
                            0.0f);
                        req.ev = ev;
                        s.lastIssueEv = ev;
                    }
                    inflight[s.side][s.fifo].push_back(req);
                    ++s.issued;
                    ++scuReadsIssued;
                    ++portsUsed;
                }
                if (s.issued >= limit && s.done >= limit) {
                    s.active = false; // retires when fully delivered
                    if (cp)
                        cpRetire(s, s.lastElemEv);
                }
            } else {
                auto &q = outFifo[s.side][s.fifo];
                for (int burst = 0; burst < cfg.scuBurst; ++burst) {
                    if (portsUsed >= cfg.memPorts)
                        break;
                    if (q.empty())
                        break;
                    if (s.count >= 0 && s.done >= s.count)
                        break;
                    Val v = q.front();
                    q.pop_front();
                    if (cp) {
                        int32_t ev = cpEvent(cpuScu, s.loopId, 0);
                        if (s.lastIssueEv >= 0)
                            cp->dep(s.lastIssueEv, cpcScuIssue,
                                    1.0f / static_cast<float>(
                                               cfg.scuBurst));
                        else
                            cp->dep(s.startEv, cpcScuStartup,
                                    static_cast<float>(
                                        cfg.scuStartupCycles));
                        cpPopOut(s.side, s.fifo);
                        s.lastIssueEv = ev;
                        s.lastElemEv = ev;
                    }
                    memWrite(s.base + s.done * s.stride, s.type, v);
                    ++s.done;
                    if (!s.enqSeqs.empty())
                        s.enqSeqs.pop_front();
                    ++portsUsed;
                    ++stats.streamElementsOut;
                }
                if ((s.count >= 0 && s.done >= s.count) ||
                        (s.closed && q.empty())) {
                    s.active = false;
                    if (cp)
                        cpRetire(s, s.lastElemEv);
                }
            }
        }
    }

    /** One element-wise vector operation on runtime values. */
    Val
    vecApply(Op op, const Val &a, const Val &b)
    {
        Val r;
        if (a.isFloat || b.isFloat) {
            double x = a.isFloat ? a.f : static_cast<double>(a.i);
            double y = b.isFloat ? b.f : static_cast<double>(b.i);
            r.isFloat = true;
            switch (op) {
              case Op::Add: r.f = x + y; return r;
              case Op::Sub: r.f = x - y; return r;
              case Op::Mul: r.f = x * y; return r;
              case Op::Div:
                if (y == 0.0)
                    throw RunError("vector floating divide by zero");
                r.f = x / y;
                return r;
              default:
                throw RunError("bad float vector operator");
            }
        }
        auto u = [](int64_t v) { return static_cast<uint64_t>(v); };
        switch (op) {
          case Op::Add: r.i = static_cast<int64_t>(u(a.i) + u(b.i));
            return r;
          case Op::Sub: r.i = static_cast<int64_t>(u(a.i) - u(b.i));
            return r;
          case Op::Mul: r.i = static_cast<int64_t>(u(a.i) * u(b.i));
            return r;
          case Op::Div:
            if (!b.i)
                throw RunError("vector integer divide by zero");
            r.i = a.i / b.i;
            return r;
          case Op::And: r.i = a.i & b.i; return r;
          case Op::Or: r.i = a.i | b.i; return r;
          case Op::Xor: r.i = a.i ^ b.i; return r;
          case Op::Shl: r.i = a.i << (b.i & 63); return r;
          case Op::Shr:
            r.i = static_cast<int64_t>(u(a.i) >> (b.i & 63));
            return r;
          case Op::Sar: r.i = a.i >> (b.i & 63); return r;
          default:
            throw RunError("bad vector operator");
        }
    }

    void
    stepVEU()
    {
        if (!veu.active)
            return;
        for (int lane = 0; lane < cfg.veuLanes; ++lane) {
            if (veu.remaining == 0)
                break;
            auto &in1 = inFifo[veu.s1Side][veu.s1Fifo];
            if (in1.empty())
                break;
            if (veu.src2IsFifo &&
                    inFifo[veu.s2Side][veu.s2Fifo].empty()) {
                break;
            }
            auto &out = outFifo[veu.dstSide][veu.dstFifo];
            if (static_cast<int>(out.size()) >= cfg.dataFifoDepth)
                break;
            int32_t vev = -1;
            if (cp) {
                vev = cpEvent(cpuVeu, veuLoop, 0);
                if (veuPrevElemEv >= 0)
                    cp->dep(veuPrevElemEv, cpcVeuLane,
                            1.0f / static_cast<float>(cfg.veuLanes));
                else
                    // Dispatch is the cycle's last phase; the first
                    // element runs the next cycle at the earliest.
                    cp->dep(veuOpEv, cpcExec, 1.0f);
                veuPrevElemEv = vev;
                lastVeuEv = vev;
                cp->pushDep(
                    cpQOut(veu.dstSide, veu.dstFifo),
                    cpCause[static_cast<size_t>(
                        StallCause::DataFifoFull)],
                    1.0f);
            }
            Val a = in1.front();
            in1.pop_front();
            if (cp)
                cpPopIn(veu.s1Side, veu.s1Fifo);
            Val r;
            if (veu.copy) {
                r = a;
            } else {
                Val b = veu.src2IsFifo
                            ? inFifo[veu.s2Side][veu.s2Fifo].front()
                            : veu.src2Val;
                if (veu.src2IsFifo) {
                    inFifo[veu.s2Side][veu.s2Fifo].pop_front();
                    if (cp)
                        cpPopIn(veu.s2Side, veu.s2Fifo);
                }
                r = vecApply(veu.op, a, b);
            }
            if (veu.dstSide == 1 && !r.isFloat) {
                r.f = static_cast<double>(r.i);
                r.isFloat = true;
            }
            out.push_back(r);
            if (cp)
                outFifoEv[veu.dstSide][veu.dstFifo].push_back(vev);
            --veu.remaining;
            ++stats.vectorElements;
        }
        if (veu.remaining == 0)
            veu.active = false;
    }

    /**
     * Execute the head of a unit queue. Returns StallCause::None on
     * progress, otherwise the (single) cause that blocked the unit
     * this cycle.
     */
    StallCause
    stepUnit(int u)
    {
        if (unitQ[u].empty())
            return StallCause::InstQueueEmpty;
        if (unitBusyUntil[u] > now)
            return StallCause::DivBusy;
        const Inst &inst = *unitQ[u].front().inst;
        int64_t seq = unitQ[u].front().seq;
        bool streamEnq = unitQ[u].front().streamEnq;

        switch (inst.kind) {
          case InstKind::Assign: {
            // An ordinary enqueue must wait while an output stream owns
            // the FIFO (its data would be swallowed as stream elements).
            if (!streamEnq && inst.dst->isReg() &&
                    inst.dst->regIndex() <= 1 &&
                    (inst.dst->regFile() == RegFile::Int ||
                     inst.dst->regFile() == RegFile::Flt)) {
                int side = inst.dst->regFile() == RegFile::Flt ? 1 : 0;
                if (findStream(side, inst.dst->regIndex(),
                               /*input=*/false)) {
                    return StallCause::StreamOwnership;
                }
            }
            int needs[2][2] = {{0, 0}, {0, 0}};
            fifoNeeds(inst.src, needs);
            for (int s = 0; s < 2; ++s)
                for (int f = 0; f < 2; ++f)
                    if (needs[s][f] >
                            static_cast<int>(inFifo[s][f].size())) {
                        return StallCause::DataFifoEmpty; // wait for data
                    }
            if (inst.dst->regFile() == RegFile::CC &&
                    static_cast<int>(
                        ccFifo[inst.dst->regIndex() == 1 ? 1 : 0]
                            .size()) >= cfg.ccFifoDepth) {
                return StallCause::CcFifoFull;
            }
            if (inst.dst->regIndex() <= 1 &&
                    (inst.dst->regFile() == RegFile::Int ||
                     inst.dst->regFile() == RegFile::Flt) &&
                    static_cast<int>(
                        outFifo[inst.dst->regFile() == RegFile::Flt
                                    ? 1
                                    : 0][inst.dst->regIndex()]
                            .size()) >= cfg.dataFifoDepth) {
                return StallCause::DataFifoFull;
            }
            bool divides = false;
            rtl::forEachNode(inst.src, [&](const Expr &n) {
                if (n.kind() == Expr::Kind::Bin &&
                        (n.op() == Op::Div || n.op() == Op::Rem)) {
                    divides = true;
                }
            });
            int32_t ev = -1;
            if (cp) {
                ev = cpUnitExecEvent(u, inst);
                // An ordinary enqueue had to wait for any prior
                // out-stream on its FIFO to retire (retire is a later
                // phase: latency 1). Stale retires are never binding.
                if (!streamEnq && inst.dst->isReg() &&
                        inst.dst->regIndex() <= 1 &&
                        (inst.dst->regFile() == RegFile::Int ||
                         inst.dst->regFile() == RegFile::Flt)) {
                    int side =
                        inst.dst->regFile() == RegFile::Flt ? 1 : 0;
                    cp->dep(
                        lastRetire[side][inst.dst->regIndex()][0],
                        cpCause[static_cast<size_t>(
                            StallCause::StreamOwnership)],
                        1.0f);
                }
            }
            Val v = eval(inst.src);
            writeReg(inst.dst, v);
            if (cp)
                cpNoteWrite(inst.dst, ev);
            if (divides) {
                unitBusyUntil[u] = now + cfg.divLatency;
                nextSerialLat[u] =
                    static_cast<float>(cfg.divLatency);
            }
            break;
          }
          case InstKind::Load: {
            if (portsUsed >= cfg.memPorts)
                return StallCause::MemPortContention;
            bool flt = rtl::isFloatType(inst.memType);
            int side = flt ? 1 : 0;
            // Input FIFO 0 is the load-data channel; while a stream
            // owns it, scalar loads wait for the stream to retire so
            // the two data sources cannot interleave.
            if (findStream(side, 0, /*input=*/true))
                return StallCause::StreamOwnership;
            int32_t ev = -1;
            if (cp) {
                ev = cpUnitExecEvent(u, inst);
                cp->dep(lastRetire[side][0][1],
                        cpCause[static_cast<size_t>(
                            StallCause::StreamOwnership)],
                        1.0f);
            }
            Val a = eval(inst.addr);
            ReadReq req;
            req.deliverAt = now + cfg.memLatency + chaosLatency();
            req.addr = a.i;
            req.size = rtl::dataTypeSize(inst.memType);
            req.isFloat = flt;
            req.seq = seq;
            req.ev = ev;
            req.loop = inst.loopId;
            checkAddr(req.addr, req.size);
            inflight[side][0].push_back(req);
            ++portsUsed;
            ++stats.loadsIssued;
            break;
          }
          case InstKind::Store: {
            bool flt = rtl::isFloatType(inst.memType);
            int side = flt ? 1 : 0;
            if (static_cast<int>(storeQ[side].size()) >=
                    cfg.storeQueueDepth) {
                return StallCause::StoreQueueFull;
            }
            int32_t ev = -1;
            if (cp)
                ev = cpUnitExecEvent(u, inst);
            Val a = eval(inst.addr);
            checkAddr(a.i, rtl::dataTypeSize(inst.memType));
            storeQ[side].push_back({a.i,
                                    rtl::dataTypeSize(inst.memType),
                                    seq, ev, inst.loopId});
            if (cp)
                // Commit (the freeing pop) is a later phase: a pop at
                // cycle t admits the next store address at t+1.
                cp->pushDep(
                    cpQStore(side),
                    cpCause[static_cast<size_t>(
                        StallCause::StoreQueueFull)],
                    1.0f);
            break;
          }
          default:
            throw RunError("non-unit instruction in unit queue");
        }
        unitQ[u].pop_front();
        if (u == 0)
            ++stats.ieuExecuted;
        else
            ++stats.feuExecuted;
        return StallCause::None;
    }

    bool
    unitsIdle() const
    {
        return unitQ[0].empty() && unitQ[1].empty() &&
               unitBusyUntil[0] <= now && unitBusyUntil[1] <= now;
    }

    /** Count an IFU stall cycle attributed to @p c. */
    void
    ifuStall(StallCause c)
    {
        lastIfuCause = c;
        ifuWaitCauseCp = c;
        ++stats.ifuStallCycles;
        ++stats.ifuStalls[c];
        if (curBucket) {
            ++curBucket->ifuStallCycles;
            ++curBucket->stalls[c];
        }
    }

    // ---- per-loop cycle attribution ----
    /** One bucket per loop id seen; few loops, linear search is fine. */
    std::vector<LoopCycleStats> loopBuckets;
    /** This cycle's bucket; valid only within one run() iteration. */
    LoopCycleStats *curBucket = nullptr;

    LoopCycleStats &
    loopBucket(int id)
    {
        for (LoopCycleStats &b : loopBuckets)
            if (b.loopId == id)
                return b;
        loopBuckets.emplace_back();
        loopBuckets.back().loopId = id;
        return loopBuckets.back();
    }

    int64_t
    resolveLabel(int func, const std::string &label)
    {
        auto it = labelIdx[func].find(label);
        if (it == labelIdx[func].end())
            throw RunError("jump to unknown label " + label);
        return it->second;
    }

    void
    fetchAndDispatch()
    {
        lastIfuCause = StallCause::None;
        if (returned)
            return;
        // Chaos jitters how many instructions the IFU processes this
        // cycle (at least one, so forward progress is preserved).
        int width = chaos ? 1 + static_cast<int>(chaosRng.nextBelow(
                                    static_cast<uint64_t>(
                                        cfg.fetchWidth)))
                          : cfg.fetchWidth;
        for (int budget = width; budget > 0; --budget) {
            if (returned)
                return;
            if (pc < 0 || pc >= static_cast<int64_t>(code.size()))
                throw RunError("PC out of range");
            FlatInst &fi = code[pc];
            const Inst &inst = *fi.inst;
            switch (engineOf(inst)) {
              case Engine::IFU: {
                switch (inst.kind) {
                  case InstKind::Jump:
                    if (cp)
                        cpIfuEvent(inst);
                    pc = resolveLabel(fi.func, inst.target);
                    break;
                  case InstKind::CondJump: {
                    int side = inst.side == UnitSide::Flt ? 1 : 0;
                    if (ccFifo[side].empty()) {
                        ifuStall(StallCause::CcFifoEmpty);
                        return; // wait for the compare
                    }
                    bool cc = ccFifo[side].front();
                    ccFifo[side].pop_front();
                    if (cp) {
                        int32_t ev = cpIfuEvent(inst);
                        int32_t prod = -1;
                        if (!ccFifoEv[side].empty()) {
                            prod = ccFifoEv[side].front();
                            ccFifoEv[side].pop_front();
                        }
                        // The compare executes in an earlier phase:
                        // same-cycle consumption is possible.
                        cp->dep(prod,
                                cpCause[static_cast<size_t>(
                                    StallCause::CcFifoEmpty)],
                                0.0f);
                        cp->pop(cpQCc(side), ev);
                    }
                    if (cc == inst.when)
                        pc = resolveLabel(fi.func, inst.target);
                    else
                        ++pc;
                    break;
                  }
                  case InstKind::JumpStream: {
                    if (cp)
                        cpIfuEvent(inst);
                    int side = inst.side == UnitSide::Flt ? 1 : 0;
                    int64_t &m = mirror[side][inst.fifo];
                    if (m < 0)
                        throw RunError("jump on unknown stream state");
                    if (m > 1) {
                        --m;
                        pc = resolveLabel(fi.func, inst.target);
                    } else {
                        m = 0;
                        ++pc;
                    }
                    break;
                  }
                  case InstKind::Call: {
                    auto it = funcEntry.find(inst.target);
                    if (it == funcEntry.end())
                        throw RunError("call to unknown function " +
                                       inst.target);
                    if (cp)
                        cpIfuEvent(inst);
                    raStack.push_back(pc + 1);
                    pc = it->second;
                    break;
                  }
                  case InstKind::Return:
                    if (cp)
                        cpIfuEvent(inst);
                    if (raStack.empty()) {
                        returned = true;
                    } else {
                        pc = raStack.back();
                        raStack.pop_back();
                    }
                    break;
                  case InstKind::StreamStop:
                    // Cancelling an input stream discards buffered
                    // data, but the anticipated exit compare lets the
                    // IFU reach the stop while the final body's
                    // dequeue is still queued behind it. Drain the
                    // execute units first so a dispatched consumer
                    // never loses data it was promised.
                    if (inst.when && !unitsIdle()) {
                        ifuStall(StallCause::SyncWait);
                        return;
                    }
                    if (cp) {
                        int32_t ev = cpIfuEvent(inst);
                        if (inst.when) {
                            // Cancelling waited for the units to
                            // drain (same cycle: exec is earlier).
                            cp->dep(lastExecEv[0],
                                    cpCause[static_cast<size_t>(
                                        StallCause::SyncWait)],
                                    0.0f);
                            cp->dep(lastExecEv[1],
                                    cpCause[static_cast<size_t>(
                                        StallCause::SyncWait)],
                                    0.0f);
                        }
                        (void)ev; // applyStreamStop uses cpCurEv
                    }
                    applyStreamStop(inst);
                    ++pc;
                    break;
                  case InstKind::Assign: {
                    // Synchronizing int/float conversion.
                    if (!unitsIdle()) {
                        ifuStall(StallCause::SyncWait);
                        return;
                    }
                    // A folded FIFO operand may still be in flight.
                    int needs[2][2] = {{0, 0}, {0, 0}};
                    fifoNeeds(inst.src, needs);
                    for (int s2 = 0; s2 < 2; ++s2)
                        for (int f2 = 0; f2 < 2; ++f2)
                            if (needs[s2][f2] >
                                    static_cast<int>(
                                        inFifo[s2][f2].size())) {
                                ifuStall(StallCause::DataFifoEmpty);
                                return;
                            }
                    int32_t ev = -1;
                    if (cp) {
                        ev = cpIfuEvent(inst);
                        cp->dep(lastExecEv[0],
                                cpCause[static_cast<size_t>(
                                    StallCause::SyncWait)],
                                0.0f);
                        cp->dep(lastExecEv[1],
                                cpCause[static_cast<size_t>(
                                    StallCause::SyncWait)],
                                0.0f);
                    }
                    Val v = eval(inst.src);
                    writeReg(inst.dst, v);
                    if (cp)
                        cpNoteWrite(inst.dst, ev);
                    ++pc;
                    break;
                  }
                  default:
                    throw RunError("bad IFU instruction");
                }
                ++stats.ifuExecuted;
                break;
              }
              case Engine::SCU: {
                if (inst.kind == InstKind::VecOp) {
                    // Vector operation: needs both units drained (the
                    // count and any scalar operand hold final values)
                    // and the VEU free.
                    if (!unitsIdle() || veu.active) {
                        ifuStall(veu.active ? StallCause::VeuBusy
                                            : StallCause::SyncWait);
                        return;
                    }
                    if (cp) {
                        int32_t ev = cpIfuEvent(inst);
                        cp->dep(lastExecEv[0],
                                cpCause[static_cast<size_t>(
                                    StallCause::SyncWait)],
                                0.0f);
                        cp->dep(lastExecEv[1],
                                cpCause[static_cast<size_t>(
                                    StallCause::SyncWait)],
                                0.0f);
                        // The previous vector op's last element ran
                        // in an earlier phase this cycle.
                        cp->dep(lastVeuEv,
                                cpCause[static_cast<size_t>(
                                    StallCause::VeuBusy)],
                                0.0f);
                        veuOpEv = ev;
                        veuPrevElemEv = -1;
                        veuLoop = inst.loopId;
                    }
                    VeuState v;
                    v.active = true;
                    v.op = inst.vecOp;
                    v.copy = inst.vecSrc2 == nullptr;
                    v.dstSide =
                        inst.dst->regFile() == RegFile::Flt ? 1 : 0;
                    v.dstFifo = inst.dst->regIndex();
                    v.s1Side =
                        inst.src->regFile() == RegFile::Flt ? 1 : 0;
                    v.s1Fifo = inst.src->regIndex();
                    if (!v.copy) {
                        const ExprPtr &s2 = inst.vecSrc2;
                        if (s2->isReg() && s2->regIndex() <= 1 &&
                                (s2->regFile() == RegFile::Int ||
                                 s2->regFile() == RegFile::Flt)) {
                            v.src2IsFifo = true;
                            v.s2Side =
                                s2->regFile() == RegFile::Flt ? 1 : 0;
                            v.s2Fifo = s2->regIndex();
                        } else {
                            v.src2Val = eval(s2);
                        }
                    }
                    v.remaining = eval(inst.count).i;
                    if (v.remaining <= 0)
                        v.active = false;
                    // Ordering bookkeeping: the VecOp produces all the
                    // enqueues the destination stream will see.
                    int64_t mySeq = seqCounter++;
                    if (Stream *s = findStream(v.dstSide, v.dstFifo,
                                               /*input=*/false)) {
                        for (int64_t k = 0; k < v.remaining; ++k) {
                            s->enqSeqs.push_back(mySeq);
                            ++s->dispatchedEnqueues;
                        }
                    }
                    veu = v;
                    ++pc;
                    ++stats.ifuExecuted;
                    break;
                }
                // Stream start: needs the IEU drained so the base and
                // count registers hold final values, plus a free SCU,
                // plus the target FIFO free of a previous stream (a
                // re-entered loop may dispatch the next instance while
                // the last one is still draining).
                if (!unitQ[0].empty() || unitBusyUntil[0] > now) {
                    ifuStall(StallCause::ScuDrainWait);
                    return;
                }
                Stream *free = nullptr;
                for (Stream &s : scus)
                    if (!s.active)
                        free = &s;
                if (!free) {
                    ifuStall(StallCause::ScuUnavailable);
                    return;
                }
                int side = inst.side == UnitSide::Flt ? 1 : 0;
                if (findStream(side, inst.fifo,
                               inst.kind == InstKind::StreamIn)) {
                    ifuStall(StallCause::ScuFifoBusy);
                    return; // previous stream still draining
                }
                int32_t startEv = -1;
                if (cp) {
                    startEv = cpIfuEvent(inst);
                    // Start gated on the IEU drain, a free SCU slot,
                    // and the FIFO's previous stream having retired —
                    // all resolved in earlier phases of this cycle.
                    cp->dep(lastExecEv[0],
                            cpCause[static_cast<size_t>(
                                StallCause::ScuDrainWait)],
                            0.0f);
                    cp->dep(free->slotRetireEv,
                            cpCause[static_cast<size_t>(
                                StallCause::ScuUnavailable)],
                            0.0f);
                    cp->dep(lastRetire[side][inst.fifo]
                                      [inst.kind == InstKind::StreamIn
                                           ? 1
                                           : 0],
                            cpCause[static_cast<size_t>(
                                StallCause::ScuFifoBusy)],
                            0.0f);
                }
                Stream s;
                s.active = true;
                s.input = inst.kind == InstKind::StreamIn;
                s.side = side;
                s.fifo = inst.fifo;
                s.base = eval(inst.addr).i;
                s.stride = inst.stride;
                s.count = inst.count ? eval(inst.count).i : -1;
                s.type = inst.memType;
                s.seq = seqCounter++;
                s.readyAt = now + cfg.scuStartupCycles +
                            (chaos ? chaosRng.nextBelow(4) : 0);
                s.loopId = inst.loopId;
                s.startEv = startEv;
                s.slotRetireEv = free->slotRetireEv;
                if (s.count == 0) {
                    // Empty stream: nothing to do, but the mirror must
                    // still say "exhausted".
                    s.active = false;
                }
                if (findStream(side, inst.fifo, s.input))
                    throw RunError("stream already active on FIFO");
                if (trace)
                    std::fprintf(stderr,
                                 "[%llu] stream %s side=%d fifo=%d "
                                 "base=%lld count=%lld stride=%lld\n",
                                 (unsigned long long)now,
                                 s.input ? "in" : "out", side, inst.fifo,
                                 (long long)s.base, (long long)s.count,
                                 (long long)s.stride);
                *free = s;
                if (cp && !s.active)
                    // Empty stream: retires the cycle it starts.
                    cpRetire(*free, startEv);
                // Starting a stream program re-arms the IFU's count
                // mirror unconditionally. The mirror may still hold a
                // positive leftover from an earlier multi-stream loop
                // that was steered by a *different* FIFO's JNI (that
                // stream's count is never decremented); keeping it
                // would make the next JNI on this FIFO run the wrong
                // trip count and over-enqueue past what the new
                // stream drains (FIFO deadlock at small depths).
                mirror[side][inst.fifo] = s.count;
                ++pc;
                ++stats.ifuExecuted;
                break;
              }
              case Engine::IEU:
              case Engine::FEU: {
                int u = engineOf(inst) == Engine::FEU ? 1 : 0;
                if (static_cast<int>(unitQ[u].size()) >=
                        cfg.instQueueDepth) {
                    ifuStall(StallCause::InstQueueFull);
                    return;
                }
                int64_t mySeq = seqCounter++;
                bool streamEnq = false;
                // Attribute enqueues to the active out-stream on their
                // FIFO — but only up to the stream's element count:
                // later enqueues in dispatch order are ordinary stores
                // that must wait for the stream to retire.
                if (inst.kind == InstKind::Assign && inst.dst->isReg() &&
                        inst.dst->regIndex() <= 1 &&
                        (inst.dst->regFile() == RegFile::Int ||
                         inst.dst->regFile() == RegFile::Flt)) {
                    int side =
                        inst.dst->regFile() == RegFile::Flt ? 1 : 0;
                    Stream *s = findStream(side, inst.dst->regIndex(),
                                           /*input=*/false);
                    if (s && !s->closed &&
                            (s->count < 0 ||
                             s->dispatchedEnqueues < s->count)) {
                        s->enqSeqs.push_back(mySeq);
                        ++s->dispatchedEnqueues;
                        streamEnq = true;
                    }
                }
                int32_t dev = -1;
                if (cp) {
                    dev = cpIfuEvent(inst);
                    // Exec (the freeing pop) is an earlier phase, so
                    // a pop at cycle t admits a dispatch at t.
                    cp->pushDep(
                        cpQInst(u),
                        cpCause[static_cast<size_t>(
                            StallCause::InstQueueFull)],
                        0.0f);
                }
                unitQ[u].push_back({&inst, mySeq, streamEnq, dev});
                ++pc;
                ++stats.instsDispatched;
                break;
              }
            }
        }
    }

    bool
    drained()
    {
        if (!unitQ[0].empty() || !unitQ[1].empty())
            return false;
        if (!storeQ[0].empty() || !storeQ[1].empty())
            return false;
        for (int s = 0; s < 2; ++s)
            for (int f = 0; f < 2; ++f)
                if (!inflight[s][f].empty())
                    return false;
        for (const Stream &s : scus)
            if (s.active && !s.input)
                return false;
        if (veu.active)
            return false;
        return true;
    }

    /** Move collected occupancy histograms into the result stats. */
    void
    finalizeStats()
    {
        // Close the flight recorder's final (possibly partial) window
        // so its window cycles sum to stats.cycles. On a RuntimeError
        // the partial faulting cycle was never sampled, so cumulative
        // channel totals may undercount — consumers skip the sum
        // check when the run faulted.
        if (cfg.timeseries)
            cfg.timeseries->finish(now);
        if (cp) {
            // Terminal event: the run ends when the last of every
            // unit's final activity has drained. The backward walk
            // starts here; the binding drain edge names the unit that
            // finished last.
            int32_t ev = cp->event(now, cpuEnd, -1, 0);
            cp->dep(lastIfuEv, cpcDrain, 0.0f);
            cp->dep(lastExecEv[0], cpcDrain, 0.0f);
            cp->dep(lastExecEv[1], cpcDrain, 0.0f);
            cp->dep(lastStoreCommitEv, cpcDrain, 0.0f);
            cp->dep(lastDeliveryEv, cpcDrain, 0.0f);
            cp->dep(lastVeuEv, cpcDrain, 0.0f);
            for (auto &s : scus)
                cp->dep(s.lastElemEv, cpcDrain, 0.0f);
            cp->setEnd(ev);
        }
        stats.cycles = now;
        stats.loops = loopBuckets;
        std::sort(stats.loops.begin(), stats.loops.end(),
                  [](const LoopCycleStats &a, const LoopCycleStats &b) {
                      return a.loopId < b.loopId;
                  });
        if (!cfg.collectOccupancy || !stats.occupancy.empty())
            return;
        stats.occupancy.reserve(kNumOcc);
        for (int i = 0; i < kNumOcc; ++i)
            stats.occupancy.push_back({kOccNames[i], occ[i]});
    }

    // ---- deadlock forensics ----

    static std::string
    unitName(int u)
    {
        return u ? "feu" : "ieu";
    }

    std::string
    scuName(size_t i) const
    {
        return strFormat("scu%zu", i);
    }

    /** FIFO-read demand of @p inst (src and addr operands). */
    void
    instNeeds(const Inst &inst, int needs[2][2])
    {
        fifoNeeds(inst.src, needs);
        fifoNeeds(inst.addr, needs);
    }

    /** Edges from @p from to whoever can fill inFifo[s][f]. */
    void
    addInFifoProducerEdges(std::vector<WaitForEdge> &edges,
                           const std::string &from, int s, int f,
                           const std::string &why)
    {
        bool any = false;
        for (size_t i = 0; i < scus.size(); ++i)
            if (scus[i].active && scus[i].input &&
                    scus[i].side == s && scus[i].fifo == f) {
                edges.push_back({from, scuName(i), why});
                any = true;
            }
        if (!inflight[s][f].empty()) {
            edges.push_back({from, "mem", why});
            any = true;
        }
        if (f == 0)
            // Scalar loads deliver into FIFO 0; they execute on the
            // IEU regardless of the data's side.
            for (const QEntry &q : unitQ[0])
                if (q.inst->kind == InstKind::Load &&
                        (rtl::isFloatType(q.inst->memType) ? 1 : 0) ==
                            s) {
                    edges.push_back({from, "ieu", why});
                    any = true;
                    break;
                }
        if (!any)
            edges.push_back({from, returned ? "<no-producer>" : "ifu",
                             why});
    }

    /** Edges from @p from to whoever can drain outFifo[s][f]. */
    void
    addOutFifoDrainerEdges(std::vector<WaitForEdge> &edges,
                           const std::string &from, int s, int f,
                           const std::string &why)
    {
        bool any = false;
        for (size_t i = 0; i < scus.size(); ++i)
            if (scus[i].active && !scus[i].input &&
                    scus[i].side == s && scus[i].fifo == f) {
                edges.push_back({from, scuName(i), why});
                any = true;
            }
        if (f == 0) {
            // The store-commit path pairs storeQ addresses with
            // FIFO-0 data.
            if (!storeQ[s].empty()) {
                edges.push_back({from, "mem", why});
                any = true;
            }
            for (const QEntry &q : unitQ[0])
                if (q.inst->kind == InstKind::Store &&
                        (rtl::isFloatType(q.inst->memType) ? 1 : 0) ==
                            s) {
                    edges.push_back({from, "ieu", why});
                    any = true;
                    break;
                }
        }
        if (!any)
            edges.push_back({from, returned ? "<no-drainer>" : "ifu",
                             why});
    }

    /** Edges from @p from to whoever can dequeue inFifo[s][f]. */
    void
    addInFifoConsumerEdges(std::vector<WaitForEdge> &edges,
                           const std::string &from, int s, int f,
                           const std::string &why)
    {
        bool any = false;
        for (int u = 0; u < 2; ++u)
            for (const QEntry &q : unitQ[u]) {
                int needs[2][2] = {{0, 0}, {0, 0}};
                instNeeds(*q.inst, needs);
                if (needs[s][f]) {
                    edges.push_back({from, unitName(u), why});
                    any = true;
                    break;
                }
            }
        if (veu.active &&
                ((veu.s1Side == s && veu.s1Fifo == f) ||
                 (veu.src2IsFifo && veu.s2Side == s &&
                  veu.s2Fifo == f))) {
            edges.push_back({from, "veu", why});
            any = true;
        }
        if (!any)
            edges.push_back({from, returned ? "<no-consumer>" : "ifu",
                             why});
    }

    /** Edges from @p from to whoever can enqueue into outFifo[s][f]. */
    void
    addOutFifoProducerEdges(std::vector<WaitForEdge> &edges,
                            const std::string &from, int s, int f,
                            const std::string &why)
    {
        bool any = false;
        for (int u = 0; u < 2; ++u)
            for (const QEntry &q : unitQ[u])
                if (q.inst->kind == InstKind::Assign &&
                        q.inst->dst->isReg() &&
                        q.inst->dst->regIndex() == f &&
                        q.inst->dst->regFile() ==
                            (s ? RegFile::Flt : RegFile::Int)) {
                    edges.push_back({from, unitName(u), why});
                    any = true;
                    break;
                }
        if (veu.active && veu.dstSide == s && veu.dstFifo == f) {
            edges.push_back({from, "veu", why});
            any = true;
        }
        if (!any)
            edges.push_back({from, returned ? "<no-producer>" : "ifu",
                             why});
    }

    /** Wait-for edges out of a blocked IEU/FEU (@p un) head. */
    void
    addUnitEdges(std::vector<WaitForEdge> &edges, int un, StallCause c)
    {
        if (unitQ[un].empty())
            return;
        const Inst &head = *unitQ[un].front().inst;
        const std::string from = unitName(un);
        const std::string why = stallCauseName(c);
        switch (c) {
          case StallCause::DataFifoEmpty: {
            int needs[2][2] = {{0, 0}, {0, 0}};
            instNeeds(head, needs);
            for (int s = 0; s < 2; ++s)
                for (int f = 0; f < 2; ++f)
                    if (needs[s][f] >
                            static_cast<int>(inFifo[s][f].size()))
                        addInFifoProducerEdges(
                            edges, from, s, f,
                            why + strFormat(": in_fifo.%s%d",
                                            s ? "flt" : "int", f));
            break;
          }
          case StallCause::DataFifoFull: {
            int s = head.dst->regFile() == RegFile::Flt ? 1 : 0;
            addOutFifoDrainerEdges(
                edges, from, s, head.dst->regIndex(),
                why + strFormat(": out_fifo.%s%d", s ? "flt" : "int",
                                head.dst->regIndex()));
            break;
          }
          case StallCause::CcFifoFull:
            // Only conditional jumps (on the IFU) pop CC FIFOs.
            edges.push_back({from, "ifu", why});
            break;
          case StallCause::StoreQueueFull: {
            int s = rtl::isFloatType(head.memType) ? 1 : 0;
            if (Stream *owner = findStream(s, 0, /*input=*/false))
                edges.push_back(
                    {from,
                     scuName(static_cast<size_t>(owner - &scus[0])),
                     why + ": store commit blocked by out-stream"});
            else if (outFifo[s][0].empty())
                addOutFifoProducerEdges(edges, from, s, 0,
                                        why + ": store data missing");
            else
                edges.push_back({from, "mem", why});
            break;
          }
          case StallCause::StreamOwnership: {
            bool isLoad = head.kind == InstKind::Load;
            int s = isLoad
                        ? (rtl::isFloatType(head.memType) ? 1 : 0)
                        : (head.dst->regFile() == RegFile::Flt ? 1
                                                               : 0);
            Stream *owner =
                isLoad ? findStream(s, 0, /*input=*/true)
                       : findStream(s, head.dst->regIndex(),
                                    /*input=*/false);
            if (owner)
                edges.push_back(
                    {from,
                     scuName(static_cast<size_t>(owner - &scus[0])),
                     why});
            break;
          }
          default:
            break; // DivBusy/MemPortContention: transient
        }
    }

    /** Wait-for edges out of a blocked IFU. */
    void
    addIfuEdges(std::vector<WaitForEdge> &edges, StallCause c)
    {
        if (returned || pc < 0 || pc >= static_cast<int64_t>(code.size()))
            return;
        const Inst &inst = *code[pc].inst;
        const std::string why = stallCauseName(c);
        switch (c) {
          case StallCause::CcFifoEmpty: {
            // cc0 is written by the IEU, cc1 by the FEU.
            int s = inst.side == UnitSide::Flt ? 1 : 0;
            edges.push_back({"ifu", unitName(s), why});
            break;
          }
          case StallCause::InstQueueFull: {
            int u = engineOf(inst) == Engine::FEU ? 1 : 0;
            edges.push_back({"ifu", unitName(u), why});
            break;
          }
          case StallCause::SyncWait:
          case StallCause::ScuDrainWait:
            for (int u = 0; u < 2; ++u)
                if (!unitQ[u].empty() || unitBusyUntil[u] > now)
                    edges.push_back({"ifu", unitName(u), why});
            break;
          case StallCause::VeuBusy:
            edges.push_back({"ifu", "veu", why});
            break;
          case StallCause::ScuUnavailable:
            for (size_t i = 0; i < scus.size(); ++i)
                if (scus[i].active)
                    edges.push_back({"ifu", scuName(i), why});
            break;
          case StallCause::ScuFifoBusy: {
            int s = inst.side == UnitSide::Flt ? 1 : 0;
            if (Stream *owner =
                    findStream(s, inst.fifo,
                               inst.kind == InstKind::StreamIn))
                edges.push_back(
                    {"ifu",
                     scuName(static_cast<size_t>(owner - &scus[0])),
                     why});
            break;
          }
          case StallCause::DataFifoEmpty: {
            // Synchronizing conversion with a folded FIFO operand.
            int needs[2][2] = {{0, 0}, {0, 0}};
            instNeeds(inst, needs);
            for (int s = 0; s < 2; ++s)
                for (int f = 0; f < 2; ++f)
                    if (needs[s][f] >
                            static_cast<int>(inFifo[s][f].size()))
                        addInFifoProducerEdges(edges, "ifu", s, f,
                                               why);
            break;
          }
          default:
            break;
        }
    }

    /** Snapshot the machine and derive the wait-for graph. */
    FaultReport
    buildFaultReport(SimFault kind)
    {
        FaultReport r;
        r.kind = kind;
        r.cycle = now;
        r.lastProgressCycle = lastProgressCycle;
        r.window = cfg.watchdogWindow;

        // Unit snapshots.
        {
            FaultUnitState u;
            u.unit = "ifu";
            u.pc = pc;
            if (!returned && pc >= 0 &&
                    pc < static_cast<int64_t>(code.size())) {
                u.inst = code[pc].inst->str();
                u.loopId = code[pc].inst->loopId;
            }
            u.blocked = !returned && lastIfuCause != StallCause::None;
            u.cause = u.blocked ? lastIfuCause : StallCause::None;
            r.units.push_back(u);
            if (u.blocked)
                addIfuEdges(r.edges, u.cause);
        }
        for (int un = 0; un < 2; ++un) {
            FaultUnitState u;
            u.unit = unitName(un);
            if (!unitQ[un].empty()) {
                const Inst &head = *unitQ[un].front().inst;
                u.inst = head.str();
                u.loopId = head.loopId;
            }
            StallCause c = lastUnitCause[un];
            u.blocked = !unitQ[un].empty() &&
                        c != StallCause::None &&
                        c != StallCause::InstQueueEmpty;
            u.cause = u.blocked ? c : StallCause::None;
            r.units.push_back(u);
            if (u.blocked)
                addUnitEdges(r.edges, un, c);
        }
        if (veu.active) {
            FaultUnitState u;
            u.unit = "veu";
            u.blocked = true;
            if (inFifo[veu.s1Side][veu.s1Fifo].empty() ||
                    (veu.src2IsFifo &&
                     inFifo[veu.s2Side][veu.s2Fifo].empty())) {
                u.cause = StallCause::DataFifoEmpty;
                if (inFifo[veu.s1Side][veu.s1Fifo].empty())
                    addInFifoProducerEdges(r.edges, "veu", veu.s1Side,
                                           veu.s1Fifo,
                                           "data_fifo_empty");
                if (veu.src2IsFifo &&
                        inFifo[veu.s2Side][veu.s2Fifo].empty())
                    addInFifoProducerEdges(r.edges, "veu", veu.s2Side,
                                           veu.s2Fifo,
                                           "data_fifo_empty");
            } else {
                u.cause = StallCause::DataFifoFull;
                addOutFifoDrainerEdges(r.edges, "veu", veu.dstSide,
                                       veu.dstFifo, "data_fifo_full");
            }
            r.units.push_back(u);
        }

        // Memory: a delivery stuck at the head of an inflight queue
        // waits on an older store (whose data a unit still owes) or
        // on space in the target FIFO.
        for (int s = 0; s < 2; ++s)
            for (int f = 0; f < 2; ++f) {
                if (inflight[s][f].empty())
                    continue;
                const ReadReq &req = inflight[s][f].front();
                if (req.deliverAt > now)
                    continue;
                if (olderStorePending(req.addr, req.size, req.seq)) {
                    for (int s2 = 0; s2 < 2; ++s2)
                        if (!storeQ[s2].empty()) {
                            if (Stream *owner = findStream(
                                    s2, 0, /*input=*/false))
                                r.edges.push_back(
                                    {"mem",
                                     scuName(static_cast<size_t>(
                                         owner - &scus[0])),
                                     "older store blocked by "
                                     "out-stream"});
                            else if (outFifo[s2][0].empty())
                                addOutFifoProducerEdges(
                                    r.edges, "mem", s2, 0,
                                    "older store waits for data");
                        }
                } else if (static_cast<int>(inFifo[s][f].size()) >=
                           cfg.dataFifoDepth) {
                    addInFifoConsumerEdges(
                        r.edges, "mem", s, f,
                        strFormat("delivery blocked: in_fifo.%s%d "
                                  "full",
                                  s ? "flt" : "int", f));
                }
            }

        // Queue occupancies.
        for (int i = 0; i < kNumOcc; ++i) {
            FaultQueueState q;
            q.name = kOccNames[i];
            q.occupancy = static_cast<int>(occValue(i));
            q.capacity = i < 8 ? cfg.dataFifoDepth
                         : i < 10 ? cfg.ccFifoDepth
                         : i < 12 ? cfg.instQueueDepth
                                  : cfg.storeQueueDepth;
            r.queues.push_back(q);
        }

        // Stream snapshots + blocked-SCU edges.
        for (size_t i = 0; i < scus.size(); ++i) {
            const Stream &s = scus[i];
            if (!s.active)
                continue;
            FaultStreamState st;
            st.scu = static_cast<int>(i);
            st.input = s.input;
            st.side = s.side;
            st.fifo = s.fifo;
            st.base = s.base;
            st.stride = s.stride;
            st.count = s.count;
            st.issued = s.issued;
            st.done = s.done;
            st.dispatchedEnqueues = s.dispatchedEnqueues;
            st.closed = s.closed;
            r.streams.push_back(st);

            FaultUnitState u;
            u.unit = scuName(i);
            if (s.input) {
                int64_t limit =
                    s.count >= 0 ? s.count : INT64_MAX / 2;
                bool full =
                    static_cast<int>(inflight[s.side][s.fifo].size() +
                                     inFifo[s.side][s.fifo].size()) >=
                    cfg.dataFifoDepth;
                if (!s.closed && s.issued < limit && full) {
                    u.blocked = true;
                    u.cause = StallCause::DataFifoFull;
                    addInFifoConsumerEdges(
                        r.edges, u.unit, s.side, s.fifo,
                        strFormat("in-stream blocked: in_fifo.%s%d "
                                  "full",
                                  s.side ? "flt" : "int", s.fifo));
                }
            } else {
                bool drained =
                    (s.count >= 0 && s.done >= s.count) || s.closed;
                if (!drained && outFifo[s.side][s.fifo].empty()) {
                    u.blocked = true;
                    u.cause = StallCause::DataFifoEmpty;
                    addOutFifoProducerEdges(
                        r.edges, u.unit, s.side, s.fifo,
                        strFormat("out-stream starved: out_fifo.%s%d "
                                  "empty",
                                  s.side ? "flt" : "int", s.fifo));
                }
            }
            r.units.push_back(u);
        }

        r.waitChain = findWaitCycle(r.edges);
        r.cycleFound = !r.waitChain.empty();
        if (!r.cycleFound && !r.edges.empty()) {
            // No cycle: report the chain from the first blocked unit
            // to its dead-end resource instead.
            std::string cur;
            for (const FaultUnitState &u : r.units)
                if (u.blocked) {
                    cur = u.unit;
                    break;
                }
            std::vector<std::string> seen;
            while (!cur.empty()) {
                if (std::find(seen.begin(), seen.end(), cur) !=
                        seen.end())
                    break;
                seen.push_back(cur);
                std::string next;
                for (const WaitForEdge &e : r.edges)
                    if (e.from == cur) {
                        next = e.to;
                        break;
                    }
                cur = next;
            }
            r.waitChain = seen;
        }

        std::string blocked;
        for (const FaultUnitState &u : r.units)
            if (u.blocked) {
                if (!blocked.empty())
                    blocked += ", ";
                blocked += u.unit + " on " +
                           stallCauseName(u.cause);
            }
        if (kind == SimFault::Deadlock)
            r.message = strFormat(
                            "no progress for %llu cycles; blocked: ",
                            static_cast<unsigned long long>(
                                now - lastProgressCycle)) +
                        (blocked.empty() ? "(none)" : blocked);
        else
            r.message =
                strFormat("cycle limit (%llu) reached while still "
                          "making progress",
                          static_cast<unsigned long long>(
                              cfg.maxCycles)) +
                (blocked.empty() ? "" : "; blocked: " + blocked);
        return r;
    }

    SimResult
    run()
    {
        SimResult res;
        if (!pendingError.empty()) {
            res.error = pendingError;
            res.fault = SimFault::RuntimeError;
            return res;
        }
        auto it = funcEntry.find("main");
        if (it == funcEntry.end()) {
            res.error = "no main function";
            res.fault = SimFault::RuntimeError;
            return res;
        }
        pc = it->second;
        // Instrumentation branches are hoisted out of the common path:
        // with both knobs off the per-cycle cost is two predictable
        // untaken branches.
        const bool sampleOcc = cfg.collectOccupancy;
        const bool tracing = cfg.trace != nullptr;
        const bool sampling = cfg.timeseries != nullptr;
        try {
            while (now < cfg.maxCycles) {
                portsUsed = 0;
                // Chaos withholds a random subset of memory ports
                // this cycle (always granting at least one).
                if (chaos)
                    portsUsed =
                        cfg.memPorts -
                        1 -
                        static_cast<int>(chaosRng.nextBelow(
                            static_cast<uint64_t>(cfg.memPorts)));
                // Attribute this whole cycle to the loop owning the
                // fetch PC as the cycle begins (bucket -1 outside any
                // loop / after return). One bucket per cycle is what
                // makes the buckets sum exactly to total cycles.
                curBucket = &loopBucket(
                    !returned && pc >= 0 &&
                            pc < static_cast<int64_t>(code.size())
                        ? code[pc].inst->loopId
                        : -1);
                ++curBucket->cycles;
                uint64_t dispatched0 = stats.instsDispatched +
                                       stats.ifuExecuted;
                uint64_t ieuExec0 = stats.ieuExecuted;
                uint64_t feuExec0 = stats.feuExecuted;
                deliverReads();
                StallCause c0 = stepUnit(0);
                StallCause c1 = stepUnit(1);
                lastUnitCause[0] = c0;
                lastUnitCause[1] = c1;
                if (cp) {
                    // Remember the most recent stall per unit; the
                    // next exec event consumes it as its wait cause.
                    if (c0 != StallCause::None)
                        unitWaitCause[0] = c0;
                    if (c1 != StallCause::None)
                        unitWaitCause[1] = c1;
                }
                if (c0 != StallCause::None) {
                    if (c0 == StallCause::InstQueueEmpty)
                        ++stats.ieuIdleCycles;
                    else {
                        ++stats.ieuStallCycles;
                        ++stats.ieuStalls[c0];
                        ++curBucket->ieuStallCycles;
                        ++curBucket->stalls[c0];
                    }
                }
                if (c1 != StallCause::None) {
                    if (c1 == StallCause::InstQueueEmpty)
                        ++stats.feuIdleCycles;
                    else {
                        ++stats.feuStallCycles;
                        ++stats.feuStalls[c1];
                        ++curBucket->feuStallCycles;
                        ++curBucket->stalls[c1];
                    }
                }
                commitStores();
                stepVEU();
                stepSCUs();
                fetchAndDispatch();
                if (sampleOcc)
                    sampleOccupancy();
                if (tracing)
                    traceCycle(stats.instsDispatched +
                                   stats.ifuExecuted - dispatched0,
                               stats.ieuExecuted - ieuExec0,
                               stats.feuExecuted - feuExec0);
                if (sampling)
                    tsSample();
                ++now;
                if (returned && drained())
                    break;
                // Watchdog: the progress sum moves whenever anything
                // architectural or memory-visible happens. A full
                // window without movement is a deadlock; snapshot and
                // diagnose instead of burning to the cycle limit.
                uint64_t p = progressSum();
                if (p != lastProgressSum) {
                    lastProgressSum = p;
                    lastProgressCycle = now;
                } else if (cfg.watchdogWindow != 0 &&
                           now - lastProgressCycle >=
                               cfg.watchdogWindow) {
                    res.fault = SimFault::Deadlock;
                    res.faultReport =
                        buildFaultReport(SimFault::Deadlock);
                    res.error = "deadlock: " + res.faultReport.message;
                    traceFinish();
                    finalizeStats();
                    res.stats = stats;
                    return res;
                }
            }
            if (now >= cfg.maxCycles) {
                // Still making progress at the limit (the watchdog
                // would have fired otherwise): a livelock or an
                // unreasonably long program.
                res.fault = SimFault::Livelock;
                res.faultReport = buildFaultReport(SimFault::Livelock);
                res.error = "livelock: " + res.faultReport.message;
                traceFinish();
                finalizeStats();
                res.stats = stats;
                return res;
            }
        } catch (const RunError &e) {
            res.error = e.what();
            res.fault = SimFault::RuntimeError;
            traceFinish();
            finalizeStats();
            res.stats = stats;
            return res;
        }
        res.ok = true;
        res.returnValue = rreg[2];
        traceFinish();
        finalizeStats();
        res.stats = stats;
        return res;
    }
};

Simulator::Simulator(const rtl::Program &prog, SimConfig config)
    : impl_(std::make_unique<Impl>(prog, config))
{
}

Simulator::~Simulator() = default;

SimResult
Simulator::run()
{
    return impl_->run();
}

int64_t
Simulator::readInt(int64_t addr) const
{
    int64_t v;
    std::memcpy(&v, &impl_->mem[addr], 8);
    return v;
}

double
Simulator::readDouble(int64_t addr) const
{
    double v;
    std::memcpy(&v, &impl_->mem[addr], 8);
    return v;
}

uint8_t
Simulator::readByte(int64_t addr) const
{
    return impl_->mem[addr];
}

SimResult
simulate(const rtl::Program &prog, SimConfig config)
{
    Simulator sim(prog, config);
    return sim.run();
}

} // namespace wmstream::wmsim
