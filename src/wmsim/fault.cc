#include "wmsim/fault.h"

#include <algorithm>
#include <functional>
#include <map>

#include "support/str.h"

namespace wmstream::wmsim {

const char *
stallCauseName(StallCause c)
{
    switch (c) {
      case StallCause::None: return "none";
      case StallCause::DataFifoEmpty: return "data_fifo_empty";
      case StallCause::DataFifoFull: return "data_fifo_full";
      case StallCause::CcFifoEmpty: return "cc_fifo_empty";
      case StallCause::CcFifoFull: return "cc_fifo_full";
      case StallCause::StoreQueueFull: return "store_queue_full";
      case StallCause::MemPortContention: return "mem_port_contention";
      case StallCause::StreamOwnership: return "stream_ownership";
      case StallCause::DivBusy: return "div_busy";
      case StallCause::InstQueueEmpty: return "inst_queue_empty";
      case StallCause::InstQueueFull: return "inst_queue_full";
      case StallCause::SyncWait: return "sync_wait";
      case StallCause::VeuBusy: return "veu_busy";
      case StallCause::ScuDrainWait: return "scu_drain_wait";
      case StallCause::ScuUnavailable: return "scu_unavailable";
      case StallCause::ScuFifoBusy: return "scu_fifo_busy";
      case StallCause::kCount: break;
    }
    return "?";
}

const char *
simFaultName(SimFault f)
{
    switch (f) {
      case SimFault::None: return "none";
      case SimFault::RuntimeError: return "runtime_error";
      case SimFault::Deadlock: return "deadlock";
      case SimFault::Livelock: return "livelock";
    }
    return "?";
}

std::vector<std::string>
findWaitCycle(const std::vector<WaitForEdge> &edges)
{
    // Adjacency over node names. The graphs here are tiny (a handful
    // of units and resources), so an iterative DFS with an explicit
    // color map is plenty.
    std::map<std::string, std::vector<std::string>> adj;
    for (const WaitForEdge &e : edges)
        adj[e.from].push_back(e.to);

    enum class Color : uint8_t { White, Grey, Black };
    std::map<std::string, Color> color;
    for (const auto &kv : adj)
        color[kv.first] = Color::White;

    std::vector<std::string> path;
    // Recursive lambda over a graph of at most a dozen nodes.
    std::function<std::vector<std::string>(const std::string &)> dfs =
        [&](const std::string &n) -> std::vector<std::string> {
        color[n] = Color::Grey;
        path.push_back(n);
        auto it = adj.find(n);
        if (it != adj.end())
            for (const std::string &m : it->second) {
                auto c = color.find(m);
                if (c != color.end() && c->second == Color::Grey) {
                    // Found a back edge: slice the cycle out of path.
                    auto start = std::find(path.begin(), path.end(), m);
                    std::vector<std::string> cyc(start, path.end());
                    cyc.push_back(m);
                    return cyc;
                }
                if (c == color.end() || c->second == Color::White) {
                    if (c == color.end())
                        color[m] = Color::White;
                    auto cyc = dfs(m);
                    if (!cyc.empty())
                        return cyc;
                }
            }
        path.pop_back();
        color[n] = Color::Black;
        return {};
    };

    for (const auto &kv : adj)
        if (color[kv.first] == Color::White) {
            path.clear();
            auto cyc = dfs(kv.first);
            if (!cyc.empty())
                return cyc;
        }
    return {};
}

std::string
FaultReport::signature() const
{
    // Shape, not incident: sorted blocked-unit/cause pairs plus the
    // wait chain. Cycle numbers, addresses, and counts are excluded
    // so one FIFO-imbalance bug yields one signature across programs
    // and configs.
    std::vector<std::string> parts;
    for (const FaultUnitState &u : units)
        if (u.blocked)
            parts.push_back(u.unit + "=" + stallCauseName(u.cause));
    std::sort(parts.begin(), parts.end());
    std::string sig = simFaultName(kind);
    sig += "|";
    for (size_t i = 0; i < parts.size(); ++i) {
        if (i)
            sig += ",";
        sig += parts[i];
    }
    if (!waitChain.empty()) {
        sig += cycleFound ? "|cycle:" : "|chain:";
        for (size_t i = 0; i < waitChain.size(); ++i) {
            if (i)
                sig += "->";
            sig += waitChain[i];
        }
    }
    return sig;
}

std::string
FaultReport::text() const
{
    std::string s = strFormat(
        "%s at cycle %llu (last progress at cycle %llu, window %llu)\n",
        simFaultName(kind), static_cast<unsigned long long>(cycle),
        static_cast<unsigned long long>(lastProgressCycle),
        static_cast<unsigned long long>(window));
    if (!message.empty())
        s += "  " + message + "\n";
    if (!waitChain.empty()) {
        s += cycleFound ? "  wait-for cycle: " : "  wait-for chain: ";
        for (size_t i = 0; i < waitChain.size(); ++i) {
            if (i)
                s += " -> ";
            s += waitChain[i];
        }
        s += "\n";
    }
    s += "  units:\n";
    for (const FaultUnitState &u : units) {
        s += strFormat("    %-5s %s", u.unit.c_str(),
                       u.blocked ? stallCauseName(u.cause) : "idle");
        if (u.pc >= 0)
            s += strFormat("  pc=%lld", static_cast<long long>(u.pc));
        if (!u.inst.empty())
            s += "  [" + u.inst + "]";
        if (u.loopId >= 0)
            s += strFormat("  loop=%d", u.loopId);
        s += "\n";
    }
    bool anyQ = false;
    for (const FaultQueueState &q : queues)
        if (q.occupancy) {
            if (!anyQ) {
                s += "  queues:\n";
                anyQ = true;
            }
            s += strFormat("    %-13s %d/%d\n", q.name.c_str(),
                           q.occupancy, q.capacity);
        }
    if (!streams.empty())
        s += "  streams:\n";
    for (const FaultStreamState &st : streams)
        s += strFormat("    scu%d %s %s.f%d base=%lld stride=%lld "
                       "count=%lld issued=%lld done=%lld enq=%lld%s\n",
                       st.scu, st.input ? "in" : "out",
                       st.side ? "flt" : "int", st.fifo,
                       static_cast<long long>(st.base),
                       static_cast<long long>(st.stride),
                       static_cast<long long>(st.count),
                       static_cast<long long>(st.issued),
                       static_cast<long long>(st.done),
                       static_cast<long long>(st.dispatchedEnqueues),
                       st.closed ? " closed" : "");
    for (const WaitForEdge &e : edges)
        s += strFormat("  edge: %s -> %s (%s)\n", e.from.c_str(),
                       e.to.c_str(), e.why.c_str());
    return s;
}

void
FaultReport::writeJson(obs::JsonWriter &w) const
{
    w.beginObject();
    w.field("schema_version", kSchemaVersion);
    w.field("kind", simFaultName(kind));
    w.field("cycle", cycle);
    w.field("last_progress_cycle", lastProgressCycle);
    w.field("window", window);
    w.field("message", message);
    w.field("signature", signature());
    w.key("units");
    w.beginArray();
    for (const FaultUnitState &u : units) {
        w.beginObject();
        w.field("unit", u.unit);
        w.field("blocked", u.blocked);
        w.field("cause", stallCauseName(u.cause));
        if (u.pc >= 0)
            w.field("pc", u.pc);
        if (!u.inst.empty())
            w.field("inst", u.inst);
        w.field("loop", static_cast<int64_t>(u.loopId));
        w.endObject();
    }
    w.endArray();
    w.key("queues");
    w.beginArray();
    for (const FaultQueueState &q : queues) {
        w.beginObject();
        w.field("name", q.name);
        w.field("occupancy", static_cast<int64_t>(q.occupancy));
        w.field("capacity", static_cast<int64_t>(q.capacity));
        w.endObject();
    }
    w.endArray();
    w.key("streams");
    w.beginArray();
    for (const FaultStreamState &st : streams) {
        w.beginObject();
        w.field("scu", static_cast<int64_t>(st.scu));
        w.field("direction", st.input ? "in" : "out");
        w.field("side", st.side ? "flt" : "int");
        w.field("fifo", static_cast<int64_t>(st.fifo));
        w.field("base", st.base);
        w.field("stride", st.stride);
        w.field("count", st.count);
        w.field("issued", st.issued);
        w.field("done", st.done);
        w.field("dispatched_enqueues", st.dispatchedEnqueues);
        w.field("closed", st.closed);
        w.endObject();
    }
    w.endArray();
    w.key("wait_for");
    w.beginObject();
    w.field("cycle_found", cycleFound);
    w.key("chain");
    w.beginArray();
    for (const std::string &n : waitChain)
        w.value(n);
    w.endArray();
    w.key("edges");
    w.beginArray();
    for (const WaitForEdge &e : edges) {
        w.beginObject();
        w.field("from", e.from);
        w.field("to", e.to);
        w.field("why", e.why);
        w.endObject();
    }
    w.endArray();
    w.endObject();
    w.endObject();
}

} // namespace wmstream::wmsim
