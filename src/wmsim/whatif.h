/**
 * @file
 * What-if scenarios for the critical-path profiler.
 *
 * Each scenario pairs two descriptions of the same hypothetical
 * machine change: a CritScenario that replays the recorded event DAG
 * with an edge class shrunk (the *prediction*), and a SimConfig edit
 * that re-simulates the program on the changed machine (the
 * *measurement*). Predicted speedup is the ratio of two DAG replays
 * (baseline model / scenario model) so first-order model error
 * cancels; the validation protocol (DESIGN.md §14) compares it
 * against the re-simulated speedup and reports the error.
 *
 * Scenarios without a faithful SimConfig edit (e.g. "every execute
 * edge at half latency" — there is no half-cycle ALU knob) are marked
 * non-validatable: they are still predicted and reported, but the
 * harness does not re-simulate them.
 */

#ifndef WMSTREAM_WMSIM_WHATIF_H
#define WMSTREAM_WMSIM_WHATIF_H

#include <string>
#include <vector>

#include "obs/critpath.h"
#include "wmsim/sim.h"

namespace wmstream::wmsim {

/** One hypothetical machine change, in both vocabularies. */
struct CritWhatIf
{
    std::string name;         ///< stable id, e.g. "fifo_depth_plus_8"
    std::string description;  ///< one line for reports
    obs::CritScenario replay; ///< DAG-replay form (prediction)
    SimConfig resim;          ///< re-simulation form (measurement)
    bool validatable = true;  ///< false: no faithful SimConfig edit
};

/**
 * The standard scenario set, derived from @p base (the configuration
 * the recording was made under): deeper data FIFOs, a zero-latency
 * SCU, a 2x-faster execute stage, and halved memory latency.
 */
std::vector<CritWhatIf> critPathWhatIfs(const SimConfig &base);

} // namespace wmstream::wmsim

#endif // WMSTREAM_WMSIM_WHATIF_H
