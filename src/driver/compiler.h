/**
 * @file
 * The compiler driver: source to optimized target program.
 *
 * Mirrors the paper's Figure 3 pipeline: front end -> code expander ->
 * optimizer phases (cleanup, loop analysis, recurrence optimization,
 * streaming, strength reduction) -> register assignment -> (WM only)
 * FIFO-form lowering. Every knob an experiment needs is a
 * CompileOptions field, so the benchmark harnesses can compile the same
 * source with/without recurrence detection or streaming, exactly like
 * the paper's measurements.
 */

#ifndef WMSTREAM_DRIVER_COMPILER_H
#define WMSTREAM_DRIVER_COMPILER_H

#include <atomic>
#include <memory>
#include <string>
#include <vector>

#include "obs/pass_profiler.h"
#include "obs/remarks.h"
#include "recurrence/recurrence.h"
#include "rtl/machine.h"
#include "rtl/program.h"
#include "streaming/streaming.h"
#include "streaming/vectorize.h"
#include "support/diag.h"
#include "verify/verify.h"

namespace wmstream::driver {

/** When the IR verifier (src/verify) runs during compilation. */
enum class VerifyMode : uint8_t {
    Off,   ///< no verification (the default)
    Final, ///< once, on the finished program
    /**
     * After expansion and after every pass, per function — LLVM's
     * -verify-each in spirit: a violation is attributed to the pass
     * that ran just before the failing checkpoint.
     */
    Each,
};

/** Per-compilation switches. */
struct CompileOptions
{
    rtl::MachineKind target = rtl::MachineKind::WM;
    bool optimize = true;        ///< classic cleanup phases
    bool recurrence = true;      ///< recurrence detection/optimization
    bool streaming = true;       ///< streaming (WM only)
    bool vectorize = false;      ///< VEU vectorization of streamed loops
    bool strengthReduce = true;  ///< address strength reduction (scalar)
    bool lowerFifo = true;       ///< WM FIFO-form lowering
    int minStreamTripCount = 4;  ///< paper Step 1 threshold
    int maxRecurrenceDegree = 4;
    /**
     * Record per-pass wall time, RTL instruction-count deltas, and
     * pass-specific counters into CompileResult::passProfiles.
     * Off by default: profiling must not slow down compilation.
     */
    bool profilePasses = false;
    /**
     * Fault injection for the differential fuzzer's self-test ONLY:
     * disable the recurrence optimizer's same-cell legality check so
     * wmfuzz has a real miscompile to catch, deduplicate, and
     * minimize. Hidden behind `wmfuzz --inject-recurrence-bug`;
     * nothing else may set it.
     */
    bool injectRecurrenceDistanceBug = false;
    /**
     * Fault injection for the deadlock watchdog's self-test ONLY:
     * under-count every input stream except the loop-steering one by
     * one element, so the consumer's final dequeue blocks forever
     * (FIFO-imbalance miscompile). Hidden behind
     * `wmfuzz --inject-deadlock-bug` / `wmc --inject-deadlock-bug`;
     * nothing else may set it.
     */
    bool injectStreamCountBug = false;
    /**
     * Run the IR verifier (structural validity, FIFO discipline,
     * recurrence legality; see verify/verify.h). Violations land in
     * CompileResult::verifyReports and are mirrored into the remarks
     * stream under pass "verify". A violation always means a
     * compiler bug, never a user error: wmc exits 70 on any.
     */
    VerifyMode verify = VerifyMode::Off;
    /**
     * Run the whole-program static FIFO deadlock/depth-requirement
     * analysis (verify/fifodepth.cc) over the final lowered WM code.
     * Results land in CompileResult::fifoRequirements; compiler-bug
     * findings (static-starved-pop, static-unproven) additionally
     * flow into verifyReports/remarks like any verifier violation,
     * while a fifo-depth-exceeded finding is a *configuration* error
     * the caller (wmc) reports against --fifo-depth. No effect on
     * scalar targets or when lowerFifo is off.
     */
    bool inferFifoDepth = false;
    /**
     * The data-FIFO depth the hardware model will run with; the
     * inferred per-queue minima are checked against it. Matches
     * wmsim::SimConfig::dataFifoDepth (wmc keeps them in sync via
     * --fifo-depth).
     */
    int configuredFifoDepth = 8;
    /**
     * Cooperative cancellation: when non-null, the driver polls this
     * flag at every pipeline checkpoint (after the front end, after
     * expansion, and after each pass) and raises CancelledError
     * ("deadline") once it reads true. This is how the serve batch
     * watchdog enforces per-TU deadlines without killing threads: the
     * watchdog sets the flag, the compile unwinds at the next
     * checkpoint. The pointee must outlive the compile.
     */
    const std::atomic<bool> *cancel = nullptr;
    /**
     * Per-TU RTL growth budget: when nonzero, a checkpoint at which
     * the program holds more than this many RTL instructions raises
     * CancelledError ("rtl-budget"). A deterministic resource fuse
     * for batch service mode; 0 disables.
     */
    int64_t maxRtlInsts = 0;
    /**
     * Fault injection for the batch runner's self-test ONLY: panic
     * (WS_PANIC, i.e. throw InternalError) right after expansion, at
     * every degradation level, so the serve ladder cannot rescue the
     * TU and must quarantine it with a typed panic record. Hidden
     * behind `wmc --inject-panic-tu` / `wmfuzz --batch-campaign
     * --inject-panic-tu`; nothing else may set it.
     */
    bool injectPanicTu = false;
    /**
     * Test hook (serve_test ONLY): block this many milliseconds at
     * the first pipeline checkpoint, polling `cancel` every
     * millisecond, so a per-TU deadline reliably expires while the
     * compile is provably still responsive to cancellation.
     */
    int testStallMs = 0;
    /**
     * Fault injection for the IR verifier's self-test ONLY: after
     * streaming, drop the FIFO dequeue of one non-steering input
     * stream (its single use reads the zero register instead), so
     * the static FIFO-balance linter has a real miscompile to catch
     * at compile time — one the deadlock watchdog could previously
     * only catch at cycle four thousand. Hidden behind
     * `wmc --inject-verifier-bug` / `wmfuzz --inject-verifier-bug`;
     * nothing else may set it.
     */
    bool injectVerifierBug = false;
};

/** Compilation output plus per-pass reports for the harnesses. */
struct CompileResult
{
    bool ok = false;
    std::unique_ptr<rtl::Program> program;
    rtl::MachineTraits traits;
    std::string diagnostics;
    std::vector<recurrence::RecurrenceReport> recurrenceReports;
    std::vector<streaming::StreamingReport> streamingReports;
    std::vector<streaming::VectorizeReport> vectorizeReports;
    /** Filled when CompileOptions::profilePasses; execution order. */
    std::vector<obs::PassProfile> passProfiles;
    /**
     * Always collected (cost is proportional to the number of loops):
     * structured optimization remarks from the recurrence and streaming
     * passes plus the loop-id registry. After compilation every RTL
     * instruction inside a loop carries the matching loop id
     * (Inst::loopId), so simulator cycle buckets join remarks on it.
     */
    obs::RemarkCollector remarks;
    /**
     * IR-verifier findings (CompileOptions::verify): one report per
     * checkpoint that found violations; clean checkpoints are only
     * counted. Violations are also mirrored into `remarks` under
     * pass "verify" with the provoking pass as an argument.
     */
    std::vector<verify::VerifyReport> verifyReports;
    int verifyCheckpoints = 0; ///< checkpoints run (clean included)
    /**
     * Whole-program FIFO verdict (CompileOptions::inferFifoDepth):
     * deadlock-freedom and per-queue minimal depths. `analyzed` is
     * false when the analysis did not run (option off, scalar
     * target, or lowering disabled).
     */
    verify::FifoRequirements fifoRequirements;

    bool verifyClean() const { return verifyReports.empty(); }
    /** Every verifier violation as diagnostic lines ("" if clean). */
    std::string verifyText() const;

    int totalRecurrences() const;
    int totalStreams() const;
    int totalVectorized() const;
};

/**
 * One compilation request for the library API: everything a compile
 * needs, as a value. The driver keeps no global or static mutable
 * state (see DESIGN.md §9's reentrancy audit), so any number of
 * compile() calls may run concurrently on different requests — the
 * serve batch runner compiles thousands of TUs across a ThreadPool
 * this way.
 */
struct CompileRequest
{
    /** Caller's identity for the TU (manifest path, synthetic id);
     *  carried through for reports, never interpreted. */
    std::string id;
    std::string source;
    CompileOptions options;
};

/**
 * Compile @p req. Lays the program out.
 *
 * Failure contract: user errors (diagnostics) return ok == false;
 * internal invariant violations throw InternalError; a tripped
 * CompileOptions::cancel flag or maxRtlInsts budget throws
 * CancelledError. Library embedders catch both exception types per
 * TU; the tools translate InternalError to exit 70 at the process
 * boundary.
 */
CompileResult compile(const CompileRequest &req);

/** Compile mini-C @p source with @p options. Lays the program out.
 *  Convenience shim over compile() for single-TU callers. */
CompileResult compileSource(const std::string &source,
                            const CompileOptions &options);

} // namespace wmstream::driver

#endif // WMSTREAM_DRIVER_COMPILER_H
