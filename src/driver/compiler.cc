#include "driver/compiler.h"

#include "expand/expander.h"
#include "frontend/parser.h"
#include "opt/passes.h"
#include "wm/lowering.h"

namespace wmstream::driver {

int
CompileResult::totalRecurrences() const
{
    int n = 0;
    for (const auto &r : recurrenceReports)
        n += r.recurrencesOptimized;
    return n;
}

int
CompileResult::totalStreams() const
{
    int n = 0;
    for (const auto &r : streamingReports)
        n += r.streamsIn + r.streamsOut;
    return n;
}

int
CompileResult::totalVectorized() const
{
    int n = 0;
    for (const auto &r : vectorizeReports)
        n += r.loopsVectorized;
    return n;
}

namespace {

int64_t
countInsts(const rtl::Function &fn)
{
    int64_t n = 0;
    for (const auto &bp : fn.blocks())
        n += static_cast<int64_t>(bp->insts.size());
    return n;
}

int64_t
countInsts(const rtl::Program &prog)
{
    int64_t n = 0;
    for (const auto &fp : prog.functions())
        n += countInsts(*fp);
    return n;
}

} // anonymous namespace

CompileResult
compileSource(const std::string &source, const CompileOptions &options)
{
    CompileResult res;
    res.traits = options.target == rtl::MachineKind::WM
                     ? rtl::wmTraits()
                     : rtl::scalarTraits();

    obs::PassProfiler prof(options.profilePasses);

    DiagEngine diag;
    std::unique_ptr<frontend::TranslationUnit> unit;
    prof.measure(
        "frontend", [] { return int64_t{0}; },
        [&] { unit = frontend::parseAndCheck(source, diag); });
    if (!unit) {
        res.diagnostics = diag.str();
        res.passProfiles = prof.profiles();
        return res;
    }

    res.program = std::make_unique<rtl::Program>();
    prof.measure(
        "expand", [&] { return countInsts(*res.program); },
        [&] { expand::expandUnit(*unit, res.traits, *res.program); });

    for (auto &fn : res.program->functions()) {
        auto insts = [&] { return countInsts(*fn); };

        if (options.optimize)
            prof.measure("cleanup", insts, [&] {
                opt::runCleanupPipeline(*fn, res.traits,
                                        res.program.get());
            });
        else
            prof.measure("legalize", insts, [&] {
                opt::runLegalize(*fn, res.traits);
            });

        if (options.recurrence) {
            prof.measure("recurrence", insts, [&] {
                res.recurrenceReports.push_back(
                    recurrence::runRecurrenceOpt(
                        *fn, res.traits, options.maxRecurrenceDegree,
                        options.injectRecurrenceDistanceBug));
            });
            const auto &rr = res.recurrenceReports.back();
            prof.addCounter("recurrence", "loops_examined",
                            rr.loopsExamined);
            prof.addCounter("recurrence", "recurrences_optimized",
                            rr.recurrencesOptimized);
            prof.addCounter("recurrence", "loads_deleted",
                            rr.loadsDeleted);
            // The paper: "after performing the recurrence
            // transformations, the optimizer invokes other phases" —
            // copy propagation removes the chain shift when possible.
            if (options.optimize)
                prof.measure("recurrence-cleanup", insts, [&] {
                    opt::runCopyPropagate(*fn, res.traits);
                    opt::runDeadCodeElim(*fn, res.traits);
                });
        }

        if (options.streaming && res.traits.hasStreams) {
            prof.measure("streaming", insts, [&] {
                res.streamingReports.push_back(streaming::runStreaming(
                    *fn, res.traits, options.minStreamTripCount));
            });
            const auto &sr = res.streamingReports.back();
            prof.addCounter("streaming", "loops_examined",
                            sr.loopsExamined);
            prof.addCounter("streaming", "loops_streamed",
                            sr.loopsStreamed);
            prof.addCounter("streaming", "streams_in", sr.streamsIn);
            prof.addCounter("streaming", "streams_out", sr.streamsOut);
            if (options.optimize)
                prof.measure("streaming-cleanup", insts, [&] {
                    opt::runCombine(*fn, res.traits);
                    opt::runCopyPropagate(*fn, res.traits);
                    opt::runDeadCodeElim(*fn, res.traits);
                    opt::runBranchOpt(*fn);
                });
            // Vectorization recognizes the post-cleanup single-
            // instruction loop bodies.
            if (options.vectorize) {
                prof.measure("vectorize", insts, [&] {
                    res.vectorizeReports.push_back(
                        streaming::runVectorize(*fn, res.traits));
                });
                prof.addCounter(
                    "vectorize", "loops_vectorized",
                    res.vectorizeReports.back().loopsVectorized);
            }
        }

        if (res.traits.isWM() && options.optimize)
            prof.measure("branch-anticipate", insts, [&] {
                opt::runBranchAnticipate(*fn, res.traits);
            });

        if (options.strengthReduce && !res.traits.isWM()) {
            prof.measure("strength-reduce", insts, [&] {
                opt::runStrengthReduce(*fn, res.traits);
            });
            if (options.optimize)
                prof.measure("strength-cleanup", insts, [&] {
                    opt::runCombine(*fn, res.traits);
                    opt::runCopyPropagate(*fn, res.traits);
                    opt::runDeadCodeElim(*fn, res.traits);
                });
        }

        prof.measure("regalloc", insts,
                     [&] { opt::runRegAlloc(*fn, res.traits); });
    }

    if (res.traits.isWM() && options.lowerFifo)
        prof.measure(
            "lower-fifo", [&] { return countInsts(*res.program); },
            [&] { wm::lowerProgram(*res.program, res.traits); });

    res.program->layout();
    res.ok = true;
    res.diagnostics = diag.str();
    res.passProfiles = prof.profiles();
    return res;
}

} // namespace wmstream::driver
