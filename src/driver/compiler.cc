#include "driver/compiler.h"

#include "expand/expander.h"
#include "frontend/parser.h"
#include "opt/passes.h"
#include "wm/lowering.h"

namespace wmstream::driver {

int
CompileResult::totalRecurrences() const
{
    int n = 0;
    for (const auto &r : recurrenceReports)
        n += r.recurrencesOptimized;
    return n;
}

int
CompileResult::totalStreams() const
{
    int n = 0;
    for (const auto &r : streamingReports)
        n += r.streamsIn + r.streamsOut;
    return n;
}

CompileResult
compileSource(const std::string &source, const CompileOptions &options)
{
    CompileResult res;
    res.traits = options.target == rtl::MachineKind::WM
                     ? rtl::wmTraits()
                     : rtl::scalarTraits();

    DiagEngine diag;
    auto unit = frontend::parseAndCheck(source, diag);
    if (!unit) {
        res.diagnostics = diag.str();
        return res;
    }

    res.program = std::make_unique<rtl::Program>();
    expand::expandUnit(*unit, res.traits, *res.program);

    for (auto &fn : res.program->functions()) {
        if (options.optimize)
            opt::runCleanupPipeline(*fn, res.traits, res.program.get());
        else
            opt::runLegalize(*fn, res.traits);

        if (options.recurrence) {
            res.recurrenceReports.push_back(recurrence::runRecurrenceOpt(
                *fn, res.traits, options.maxRecurrenceDegree));
            // The paper: "after performing the recurrence
            // transformations, the optimizer invokes other phases" —
            // copy propagation removes the chain shift when possible.
            if (options.optimize) {
                opt::runCopyPropagate(*fn, res.traits);
                opt::runDeadCodeElim(*fn, res.traits);
            }
        }

        if (options.streaming && res.traits.hasStreams) {
            res.streamingReports.push_back(streaming::runStreaming(
                *fn, res.traits, options.minStreamTripCount));
            if (options.optimize) {
                opt::runCombine(*fn, res.traits);
                opt::runCopyPropagate(*fn, res.traits);
                opt::runDeadCodeElim(*fn, res.traits);
                opt::runBranchOpt(*fn);
            }
            // Vectorization recognizes the post-cleanup single-
            // instruction loop bodies.
            if (options.vectorize)
                res.vectorizeReports.push_back(
                    streaming::runVectorize(*fn, res.traits));
        }

        if (res.traits.isWM() && options.optimize)
            opt::runBranchAnticipate(*fn, res.traits);

        if (options.strengthReduce && !res.traits.isWM()) {
            opt::runStrengthReduce(*fn, res.traits);
            if (options.optimize) {
                opt::runCombine(*fn, res.traits);
                opt::runCopyPropagate(*fn, res.traits);
                opt::runDeadCodeElim(*fn, res.traits);
            }
        }

        opt::runRegAlloc(*fn, res.traits);
    }

    if (res.traits.isWM() && options.lowerFifo)
        wm::lowerProgram(*res.program, res.traits);

    res.program->layout();
    res.ok = true;
    res.diagnostics = diag.str();
    return res;
}

} // namespace wmstream::driver
