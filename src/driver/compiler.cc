#include "driver/compiler.h"

#include <algorithm>
#include <chrono>
#include <thread>

#include "cfg/dominators.h"
#include "cfg/loops.h"
#include "expand/expander.h"
#include "frontend/parser.h"
#include "opt/passes.h"
#include "wm/lowering.h"

namespace wmstream::driver {

int
CompileResult::totalRecurrences() const
{
    int n = 0;
    for (const auto &r : recurrenceReports)
        n += r.recurrencesOptimized;
    return n;
}

int
CompileResult::totalStreams() const
{
    int n = 0;
    for (const auto &r : streamingReports)
        n += r.streamsIn + r.streamsOut;
    return n;
}

int
CompileResult::totalVectorized() const
{
    int n = 0;
    for (const auto &r : vectorizeReports)
        n += r.loopsVectorized;
    return n;
}

std::string
CompileResult::verifyText() const
{
    std::string s;
    for (const auto &rep : verifyReports)
        s += rep.str();
    return s;
}

namespace {

int64_t
countInsts(const rtl::Function &fn)
{
    int64_t n = 0;
    for (const auto &bp : fn.blocks())
        n += static_cast<int64_t>(bp->insts.size());
    return n;
}

int64_t
countInsts(const rtl::Program &prog)
{
    int64_t n = 0;
    for (const auto &fp : prog.functions())
        n += countInsts(*fp);
    return n;
}

/** First stamped source position in the loop (header first). */
SourcePos
loopPos(const cfg::Loop &loop)
{
    for (const rtl::Inst &inst : loop.header->insts)
        if (inst.pos.valid())
            return inst.pos;
    for (rtl::Block *b : loop.blocks)
        for (const rtl::Inst &inst : b->insts)
            if (inst.pos.valid())
                return inst.pos;
    return {};
}

/**
 * Registry id for a final-code loop. Header labels normally survive
 * every phase, but block merges can retire them, so fall back to
 * matching any block label of the loop before registering it as new.
 */
int
resolveLoopId(obs::RemarkCollector &rc, const rtl::Function &fn,
              const cfg::Loop &loop)
{
    for (const obs::LoopRecord &l : rc.loops())
        if (l.function == fn.name() && l.header == loop.header->label())
            return l.id;
    for (const obs::LoopRecord &l : rc.loops()) {
        if (l.function != fn.name())
            continue;
        for (rtl::Block *b : loop.blocks)
            if (b->label() == l.header)
                return l.id;
    }
    return rc.loopId(fn.name(), loop.header->label(), loopPos(loop));
}

/**
 * The loop-tagging step: after all optimization and lowering, stamp
 * every instruction with the id of the innermost loop containing it.
 * Instructions outside every loop keep a pass-assigned id if they have
 * one (stream setup and recurrence priming in preheaders charge to the
 * loop they feed), else stay -1. Runs before layout so the simulator
 * sees the ids; this is the join key between optimization remarks and
 * per-loop cycle buckets.
 */
void
tagLoops(rtl::Program &program, obs::RemarkCollector &rc)
{
    for (auto &fn : program.functions()) {
        fn->recomputeCfg();
        cfg::DominatorTree dt(*fn);
        cfg::LoopInfo li(*fn, dt);
        // Outermost first so inner loops overwrite shared blocks.
        std::vector<cfg::Loop *> order;
        for (cfg::Loop &loop : li.loops())
            order.push_back(&loop);
        std::sort(order.begin(), order.end(),
                  [](const cfg::Loop *a, const cfg::Loop *b) {
                      return a->blocks.size() > b->blocks.size();
                  });
        for (cfg::Loop *loop : order) {
            int id = resolveLoopId(rc, *fn, *loop);
            for (rtl::Block *b : loop->blocks)
                for (rtl::Inst &inst : b->insts)
                    inst.loopId = id;
        }
    }
}

} // anonymous namespace

CompileResult
compile(const CompileRequest &req)
{
    const CompileOptions &options = req.options;
    CompileResult res;
    res.traits = options.target == rtl::MachineKind::WM
                     ? rtl::wmTraits()
                     : rtl::scalarTraits();

    obs::PassProfiler prof(options.profilePasses);

    // Pipeline checkpoint: the cooperative cancellation point and the
    // RTL-budget fuse. Called between passes only, so a cancelled
    // compile always unwinds from a consistent boundary.
    auto checkpoint = [&] {
        if (options.cancel && options.cancel->load())
            throw CancelledError("deadline",
                                 "per-TU deadline expired");
        if (options.maxRtlInsts > 0 && res.program &&
            countInsts(*res.program) > options.maxRtlInsts)
            throw CancelledError("rtl-budget",
                                 "RTL instruction budget exceeded");
    };

    DiagEngine diag;
    std::unique_ptr<frontend::TranslationUnit> unit;
    prof.measure(
        "frontend", [] { return int64_t{0}; },
        [&] { unit = frontend::parseAndCheck(req.source, diag); });
    if (options.testStallMs > 0) {
        // serve_test hook: a deterministically slow compile that
        // stays responsive to cancellation (checked every 1ms).
        auto until = std::chrono::steady_clock::now() +
                     std::chrono::milliseconds(options.testStallMs);
        while (std::chrono::steady_clock::now() < until) {
            checkpoint();
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
        }
    }
    checkpoint();
    if (!unit) {
        res.diagnostics = diag.str();
        res.passProfiles = prof.profiles();
        return res;
    }

    res.program = std::make_unique<rtl::Program>();
    prof.measure(
        "expand", [&] { return countInsts(*res.program); },
        [&] {
            expand::expandUnit(*unit, res.traits, *res.program,
                               &res.remarks);
        });
    checkpoint();
    if (options.injectPanicTu)
        WS_PANIC("injected panic (batch-isolation self-test)");

    // Verifier checkpoints (CompileOptions::verify). Violations are
    // compiler bugs: they are kept verbatim in res.verifyReports and
    // mirrored into the remarks stream so wmreport joins them with the
    // provoking pass and loop like any other remark.
    auto recordVerify = [&](verify::VerifyReport rep) {
        ++res.verifyCheckpoints;
        if (rep.ok())
            return;
        for (const verify::Violation &v : rep.violations) {
            obs::Remark r;
            r.pass = "verify";
            r.function = v.function;
            r.loc = v.pos;
            r.verdict = obs::RemarkVerdict::Missed;
            r.reason = v.reason;
            if (!v.loopHeader.empty())
                r.loopId =
                    res.remarks.loopId(v.function, v.loopHeader, v.pos);
            r.arg("after_pass", rep.pass)
                .arg("stage", verify::stageName(rep.stage))
                .arg("invariant", v.invariant);
            res.remarks.add(std::move(r));
        }
        res.verifyReports.push_back(std::move(rep));
    };
    // Per-function checkpoint after one pass in Each mode. Pre-regalloc
    // passes check at PostOpt (virtual registers still legal, data-FIFO
    // depths not yet meaningful); regalloc checks at PostRegalloc.
    auto verifyAfter = [&](rtl::Function &fn, const char *passName,
                           verify::Stage stage) {
        // Every pass boundary is also a cancellation/budget
        // checkpoint, in every verify mode.
        checkpoint();
        if (options.verify != VerifyMode::Each)
            return;
        verify::VerifyOptions vo;
        vo.stage = stage;
        vo.pass = passName;
        recordVerify(verify::verifyFunction(fn, res.traits, vo,
                                            res.program.get()));
    };
    constexpr auto kPostOpt = verify::Stage::PostOpt;

    if (options.verify == VerifyMode::Each) {
        verify::VerifyOptions vo;
        vo.stage = verify::Stage::PostExpand;
        vo.pass = "expand";
        recordVerify(verify::verifyProgram(*res.program, res.traits,
                                           vo));
    }

    for (auto &fn : res.program->functions()) {
        auto insts = [&] { return countInsts(*fn); };

        if (options.optimize) {
            prof.measure("cleanup", insts, [&] {
                opt::runCleanupPipeline(*fn, res.traits,
                                        res.program.get());
            });
            verifyAfter(*fn, "cleanup", kPostOpt);
        } else {
            prof.measure("legalize", insts, [&] {
                opt::runLegalize(*fn, res.traits);
            });
            verifyAfter(*fn, "legalize", kPostOpt);
        }

        if (options.recurrence) {
            prof.measure("recurrence", insts, [&] {
                res.recurrenceReports.push_back(
                    recurrence::runRecurrenceOpt(
                        *fn, res.traits, options.maxRecurrenceDegree,
                        options.injectRecurrenceDistanceBug,
                        &res.remarks));
            });
            const auto &rr = res.recurrenceReports.back();
            prof.addCounter("recurrence", "loops_examined",
                            rr.loopsExamined);
            prof.addCounter("recurrence", "recurrences_optimized",
                            rr.recurrencesOptimized);
            prof.addCounter("recurrence", "loads_deleted",
                            rr.loadsDeleted);
            verifyAfter(*fn, "recurrence", kPostOpt);
            // The chain shape only exists right after the pass: copy
            // propagation legitimately dissolves it, so legality is
            // checked here regardless of mode (the check is cheap and
            // the shape is unrecoverable later).
            if (options.verify != VerifyMode::Off)
                recordVerify(verify::verifyRecurrenceChains(
                    *fn, res.traits, rr.chains, "recurrence"));
            // The paper: "after performing the recurrence
            // transformations, the optimizer invokes other phases" —
            // copy propagation removes the chain shift when possible.
            if (options.optimize) {
                prof.measure("recurrence-cleanup", insts, [&] {
                    opt::runCopyPropagate(*fn, res.traits);
                    opt::runDeadCodeElim(*fn, res.traits);
                });
                verifyAfter(*fn, "recurrence-cleanup", kPostOpt);
            }
        }

        if (options.streaming && res.traits.hasStreams) {
            prof.measure("streaming", insts, [&] {
                res.streamingReports.push_back(streaming::runStreaming(
                    *fn, res.traits, options.minStreamTripCount,
                    &res.remarks, options.injectStreamCountBug,
                    options.injectVerifierBug));
            });
            const auto &sr = res.streamingReports.back();
            prof.addCounter("streaming", "loops_examined",
                            sr.loopsExamined);
            prof.addCounter("streaming", "loops_streamed",
                            sr.loopsStreamed);
            prof.addCounter("streaming", "streams_in", sr.streamsIn);
            prof.addCounter("streaming", "streams_out", sr.streamsOut);
            verifyAfter(*fn, "streaming", kPostOpt);
            if (options.optimize) {
                prof.measure("streaming-cleanup", insts, [&] {
                    opt::runCombine(*fn, res.traits);
                    opt::runCopyPropagate(*fn, res.traits);
                    // Branch optimization before DCE: deleting a
                    // fallthrough CondJump leaves its compare — a
                    // CC-FIFO enqueue nothing will ever dequeue — and
                    // this is the last DCE that can collect it.
                    opt::runBranchOpt(*fn);
                    opt::runDeadCodeElim(*fn, res.traits);
                });
                verifyAfter(*fn, "streaming-cleanup", kPostOpt);
            }
            // Vectorization recognizes the post-cleanup single-
            // instruction loop bodies.
            if (options.vectorize) {
                prof.measure("vectorize", insts, [&] {
                    res.vectorizeReports.push_back(
                        streaming::runVectorize(*fn, res.traits));
                });
                prof.addCounter(
                    "vectorize", "loops_vectorized",
                    res.vectorizeReports.back().loopsVectorized);
                verifyAfter(*fn, "vectorize", kPostOpt);
            }
        }

        if (res.traits.isWM() && options.optimize) {
            prof.measure("branch-anticipate", insts, [&] {
                opt::runBranchAnticipate(*fn, res.traits);
            });
            verifyAfter(*fn, "branch-anticipate", kPostOpt);
        }

        if (options.strengthReduce && !res.traits.isWM()) {
            prof.measure("strength-reduce", insts, [&] {
                opt::runStrengthReduce(*fn, res.traits);
            });
            verifyAfter(*fn, "strength-reduce", kPostOpt);
            if (options.optimize) {
                prof.measure("strength-cleanup", insts, [&] {
                    opt::runCombine(*fn, res.traits);
                    opt::runCopyPropagate(*fn, res.traits);
                    opt::runDeadCodeElim(*fn, res.traits);
                });
                verifyAfter(*fn, "strength-cleanup", kPostOpt);
            }
        }

        prof.measure("regalloc", insts,
                     [&] { opt::runRegAlloc(*fn, res.traits); });
        verifyAfter(*fn, "regalloc", verify::Stage::PostRegalloc);
    }

    if (res.traits.isWM() && options.lowerFifo) {
        prof.measure(
            "lower-fifo", [&] { return countInsts(*res.program); },
            [&] { wm::lowerProgram(*res.program, res.traits); });
        checkpoint();
    }

    // End-of-pipeline checkpoint: the only one in Final mode, and the
    // one place data-FIFO depths are tracked (PostLower) in Each mode.
    if (options.verify != VerifyMode::Off) {
        verify::VerifyOptions vo;
        vo.stage = res.traits.isWM() && options.lowerFifo
                       ? verify::Stage::PostLower
                       : verify::Stage::PostRegalloc;
        vo.pass = options.verify == VerifyMode::Each ? "lower-fifo"
                                                     : "final";
        recordVerify(
            verify::verifyProgram(*res.program, res.traits, vo));
    }

    // Whole-program FIFO deadlock/depth analysis over the final
    // code. Compiler-bug findings (starved pop, unprovable
    // discipline) flow into the verifier stream; a depth-exceeded
    // finding is a configuration error left to the caller, so it
    // stays out of verifyReports (wmc reports it against
    // --fifo-depth and exits 1, not 70).
    if (options.inferFifoDepth && res.traits.isWM() &&
            options.lowerFifo) {
        prof.measure(
            "fifo-depth", [&] { return countInsts(*res.program); },
            [&] {
                res.fifoRequirements = verify::analyzeFifoRequirements(
                    *res.program, res.traits,
                    options.configuredFifoDepth);
            });
        prof.addCounter("fifo-depth", "queues_analyzed",
                        static_cast<int64_t>(
                            res.fifoRequirements.queues.size()));
        prof.addCounter("fifo-depth", "min_depth",
                        res.fifoRequirements.minDepth);
        verify::VerifyReport bugs;
        bugs.pass = res.fifoRequirements.findings.pass;
        bugs.stage = res.fifoRequirements.findings.stage;
        for (const verify::Violation &v :
             res.fifoRequirements.findings.violations)
            if (v.reason != "fifo-depth-exceeded")
                bugs.violations.push_back(v);
        if (!bugs.ok())
            recordVerify(std::move(bugs));
        checkpoint();
    }

    tagLoops(*res.program, res.remarks);
    res.program->layout();
    res.ok = true;
    res.diagnostics = diag.str();
    res.passProfiles = prof.profiles();
    return res;
}

CompileResult
compileSource(const std::string &source, const CompileOptions &options)
{
    CompileRequest req;
    req.source = source;
    req.options = options;
    return compile(req);
}

} // namespace wmstream::driver
