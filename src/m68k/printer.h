/**
 * @file
 * Motorola 68020 assembly printer (paper Figure 6).
 *
 * Demonstrates the retargetability claim: the recurrence optimization
 * is machine-independent, and on the 68020 the instruction-selection
 * peepholes turn strength-reduced pointer walks into auto-increment
 * addressing (`a0@+`), exactly as the paper's Figure 6 shows.
 *
 * The printer consumes register-assigned scalar-target RTL. It is a
 * listing generator (the scalar timing simulator executes the RTL
 * itself), so it focuses on faithful instruction selection rather than
 * encodings.
 */

#ifndef WMSTREAM_M68K_PRINTER_H
#define WMSTREAM_M68K_PRINTER_H

#include <string>

#include "rtl/program.h"

namespace wmstream::m68k {

/** 68020 listing for one function. */
std::string printFunction(const rtl::Function &fn);

/** 68020 listing for a whole program. */
std::string printProgram(const rtl::Program &prog);

} // namespace wmstream::m68k

#endif // WMSTREAM_M68K_PRINTER_H
