#include "m68k/printer.h"

#include <sstream>
#include <unordered_map>
#include <unordered_set>

#include "support/str.h"

namespace wmstream::m68k {

using rtl::Expr;
using rtl::ExprPtr;
using rtl::Inst;
using rtl::InstKind;
using rtl::Op;
using rtl::RegFile;

namespace {

/** Register name assignment: address vs data vs float registers. */
class RegNames
{
  public:
    explicit RegNames(const rtl::Function &fn)
    {
        // Integer registers appearing inside load/store addresses get
        // address registers; everything else gets data registers.
        std::unordered_set<int> addrRegs;
        for (const auto &bp : fn.blocks()) {
            for (const Inst &inst : bp->insts) {
                if (inst.kind != InstKind::Load &&
                        inst.kind != InstKind::Store) {
                    continue;
                }
                rtl::forEachNode(inst.addr, [&](const Expr &n) {
                    if (n.kind() == Expr::Kind::Reg &&
                            n.regFile() == RegFile::Int) {
                        addrRegs.insert(n.regIndex());
                    }
                });
            }
        }
        int nextA = 0, nextD = 0, nextF = 0;
        for (const auto &bp : fn.blocks()) {
            for (const Inst &inst : bp->insts) {
                auto touch = [&](const ExprPtr &e) {
                    rtl::forEachNode(e, [&](const Expr &n) {
                        if (n.kind() != Expr::Kind::Reg)
                            return;
                        if (n.regFile() == RegFile::Int) {
                            int r = n.regIndex();
                            if (r == 31 || r == 30)
                                return; // zero / a7
                            if (intNames_.count(r))
                                return;
                            if (addrRegs.count(r) && nextA < 6)
                                intNames_[r] =
                                    strFormat("a%d", nextA++);
                            else
                                intNames_[r] =
                                    strFormat("d%d", nextD++ % 8);
                        } else if (n.regFile() == RegFile::Flt) {
                            int r = n.regIndex();
                            if (r == 31 || fltNames_.count(r))
                                return;
                            fltNames_[r] = strFormat("fp%d", nextF++ % 8);
                        }
                    });
                };
                touch(inst.dst);
                touch(inst.src);
                touch(inst.addr);
                touch(inst.count);
            }
        }
    }

    std::string
    intName(int r) const
    {
        if (r == 30)
            return "a7";
        if (r == 31)
            return "#0";
        auto it = intNames_.find(r);
        return it != intNames_.end() ? it->second : strFormat("d%d", r % 8);
    }

    std::string
    fltName(int r) const
    {
        if (r == 31)
            return "#0.0";
        auto it = fltNames_.find(r);
        return it != fltNames_.end() ? it->second
                                     : strFormat("fp%d", r % 8);
    }

  private:
    std::unordered_map<int, std::string> intNames_;
    std::unordered_map<int, std::string> fltNames_;
};

std::string
regName(const RegNames &names, const ExprPtr &e)
{
    if (e->regFile() == RegFile::Flt || e->regFile() == RegFile::VFlt)
        return names.fltName(e->regIndex());
    return names.intName(e->regIndex());
}

/** Addressing mode string for a load/store address. */
std::string
addrMode(const RegNames &names, const ExprPtr &a)
{
    if (a->isSym()) {
        if (a->symOffset())
            return strFormat("(%lld + _%s)",
                             static_cast<long long>(a->symOffset()),
                             a->symbol().c_str());
        return "(_" + a->symbol() + ")";
    }
    if (a->isReg())
        return names.intName(a->regIndex()) + "@";
    if (a->kind() == Expr::Kind::Bin && a->op() == Op::Add) {
        const ExprPtr &l = a->lhs();
        const ExprPtr &r = a->rhs();
        if (l->isReg() && r->isConst())
            return strFormat("%s@(%lld)",
                             names.intName(l->regIndex()).c_str(),
                             static_cast<long long>(r->ival()));
        if (l->isConst() && r->isReg())
            return strFormat("%s@(%lld)",
                             names.intName(r->regIndex()).c_str(),
                             static_cast<long long>(l->ival()));
        if (l->isSym() && r->isConst())
            return strFormat("(%lld + _%s)",
                             static_cast<long long>(r->ival() +
                                                    l->symOffset()),
                             l->symbol().c_str());
        // Scaled index: (reg << k) + base
        if (l->kind() == Expr::Kind::Bin && l->op() == Op::Shl &&
                l->lhs()->isReg() && l->rhs()->isConst()) {
            int scale = 1 << l->rhs()->ival();
            std::string base = r->isSym() ? "_" + r->symbol()
                                          : names.intName(r->regIndex());
            return strFormat("%s@(0,%s:l:%d)", base.c_str(),
                             names.intName(l->lhs()->regIndex()).c_str(),
                             scale);
        }
        if (l->isReg() && r->isReg())
            return strFormat("%s@(0,%s:l)",
                             names.intName(l->regIndex()).c_str(),
                             names.intName(r->regIndex()).c_str());
        // ((index << k) + base) + displacement
        if (r->isConst() && l->kind() == Expr::Kind::Bin &&
                l->op() == Op::Add) {
            const ExprPtr &idx = l->lhs();
            const ExprPtr &base = l->rhs();
            if (idx->kind() == Expr::Kind::Bin && idx->op() == Op::Shl &&
                    idx->lhs()->isReg() && idx->rhs()->isConst()) {
                int scale = 1 << idx->rhs()->ival();
                std::string b =
                    base->isSym() ? "_" + base->symbol()
                                  : names.intName(base->regIndex());
                return strFormat("(%s%+lld,%s:l:%d)", b.c_str(),
                                 static_cast<long long>(r->ival()),
                                 names.intName(idx->lhs()->regIndex())
                                     .c_str(),
                                 scale);
            }
        }
    }
    return "<" + a->str() + ">";
}

const char *
jccFor(Op rel, bool when)
{
    Op eff = when ? rel : rtl::negateRelational(rel);
    switch (eff) {
      case Op::Eq: return "jeq";
      case Op::Ne: return "jne";
      case Op::Lt: return "jlt";
      case Op::Le: return "jle";
      case Op::Gt: return "jgt";
      case Op::Ge: return "jge";
      default: return "jra";
    }
}

} // anonymous namespace

std::string
printFunction(const rtl::Function &fn)
{
    RegNames names(fn);
    std::ostringstream os;
    os << "| 68020 code for " << fn.name() << "\n";

    // Which pointer bumps are folded into auto-increment modes.
    // Pattern: Load/Store with address `p`, followed later in the same
    // block (with no other use of p between) by p := p + elemsize.
    std::unordered_set<const Inst *> folded;
    std::unordered_map<const Inst *, bool> autoInc;
    for (const auto &bp : fn.blocks()) {
        auto &insts = bp->insts;
        for (size_t i = 0; i < insts.size(); ++i) {
            const Inst &mem = insts[i];
            if (mem.kind != InstKind::Load && mem.kind != InstKind::Store)
                continue;
            if (!mem.addr->isReg())
                continue;
            int p = mem.addr->regIndex();
            int64_t esz = rtl::dataTypeSize(mem.memType);
            for (size_t j = i + 1; j < insts.size(); ++j) {
                const Inst &b = insts[j];
                bool usesP = false;
                for (const auto &u : rtl::instUses(b))
                    if (u->isReg(RegFile::Int, p))
                        usesP = true;
                bool defsP = b.dst && b.dst->isReg(RegFile::Int, p);
                if (defsP && b.kind == InstKind::Assign &&
                        b.src->kind() == Expr::Kind::Bin &&
                        b.src->op() == Op::Add &&
                        b.src->lhs()->isReg(RegFile::Int, p) &&
                        b.src->rhs()->isIntConst(esz) &&
                        !folded.count(&b)) {
                    folded.insert(&b);
                    autoInc[&mem] = true;
                    break;
                }
                if (usesP || defsP)
                    break;
            }
        }
    }

    Op lastCmp = Op::Eq;
    for (const auto &bp : fn.blocks()) {
        os << bp->label() << ":\n";
        for (const Inst &inst : bp->insts) {
            if (folded.count(&inst))
                continue; // absorbed into an auto-increment mode
            std::ostringstream line;
            switch (inst.kind) {
              case InstKind::Assign: {
                if (inst.dst->regFile() == RegFile::CC) {
                    lastCmp = inst.src->op();
                    std::string a = inst.src->lhs()->isConst()
                                        ? strFormat("#%lld",
                                                    static_cast<long long>(
                                                        inst.src->lhs()
                                                            ->ival()))
                                        : regName(names, inst.src->lhs());
                    std::string b = inst.src->rhs()->isConst()
                                        ? strFormat("#%lld",
                                                    static_cast<long long>(
                                                        inst.src->rhs()
                                                            ->ival()))
                                        : regName(names, inst.src->rhs());
                    bool flt = inst.dst->regIndex() == 1;
                    // 68k compare computes dst - src: cmpl src,dst.
                    line << (flt ? "fcmpx " : "cmpl ") << b << "," << a;
                    break;
                }
                bool flt = inst.dst->regFile() == RegFile::Flt;
                std::string d = regName(names, inst.dst);
                const ExprPtr &s = inst.src;
                if (s->isConst() && !rtl::isFloatType(s->type())) {
                    if (s->ival() >= -128 && s->ival() <= 127)
                        line << "moveq #" << s->ival() << "," << d;
                    else
                        line << "movl #" << s->ival() << "," << d;
                } else if (s->isSym()) {
                    line << "lea (_" << s->symbol();
                    if (s->symOffset())
                        line << "+" << s->symOffset();
                    line << ")," << d;
                } else if (s->isReg()) {
                    line << (flt ? "fmovex " : "movl ")
                         << regName(names, s) << "," << d;
                } else if (s->kind() == Expr::Kind::Un) {
                    if (s->op() == Op::CvtIF)
                        line << "fmovel " << regName(names, s->lhs())
                             << "," << d;
                    else if (s->op() == Op::CvtFI)
                        line << "fmovel " << regName(names, s->lhs())
                             << "," << d;
                    else
                        line << "negl " << d;
                } else if (s->kind() == Expr::Kind::Bin) {
                    const char *mn = nullptr;
                    switch (s->op()) {
                      case Op::Add: mn = flt ? "faddx" : "addl"; break;
                      case Op::Sub: mn = flt ? "fsubx" : "subl"; break;
                      case Op::Mul: mn = flt ? "fmulx" : "mulsl"; break;
                      case Op::Div: mn = flt ? "fdivx" : "divsl"; break;
                      case Op::Rem: mn = "remsl"; break;
                      case Op::And: mn = "andl"; break;
                      case Op::Or: mn = "orl"; break;
                      case Op::Xor: mn = "eorl"; break;
                      case Op::Shl: mn = "lsll"; break;
                      case Op::Shr: mn = "lsrl"; break;
                      case Op::Sar: mn = "asrl"; break;
                      default: mn = "op?"; break;
                    }
                    auto opnd = [&](const ExprPtr &e) {
                        if (e->isConst())
                            return strFormat(
                                "#%lld",
                                static_cast<long long>(e->ival()));
                        return regName(names, e);
                    };
                    // Two-address form: dst must equal the first
                    // operand; emit a move when it does not.
                    bool dstIsLhs =
                        s->lhs()->isReg() &&
                        regName(names, s->lhs()) == d;
                    if (s->op() == Op::Add && s->rhs()->isConst() &&
                            dstIsLhs && s->rhs()->ival() >= 1 &&
                            s->rhs()->ival() <= 8) {
                        line << "addql #" << s->rhs()->ival() << "," << d;
                    } else {
                        if (!dstIsLhs)
                            line << (flt ? "fmovex " : "movl ")
                                 << opnd(s->lhs()) << "," << d << "; ";
                        line << mn << " " << opnd(s->rhs()) << "," << d;
                    }
                } else {
                    line << "?" << s->str();
                }
                break;
              }
              case InstKind::Load: {
                bool flt = rtl::isFloatType(inst.memType);
                std::string mode = autoInc.count(&inst) && inst.addr->isReg()
                                       ? names.intName(
                                             inst.addr->regIndex()) + "@+"
                                       : addrMode(names, inst.addr);
                line << (flt ? "fmoved "
                             : (rtl::dataTypeSize(inst.memType) == 1
                                    ? "moveb "
                                    : "movl "))
                     << mode << "," << regName(names, inst.dst);
                break;
              }
              case InstKind::Store: {
                bool flt = rtl::isFloatType(inst.memType);
                std::string mode = autoInc.count(&inst) && inst.addr->isReg()
                                       ? names.intName(
                                             inst.addr->regIndex()) + "@+"
                                       : addrMode(names, inst.addr);
                line << (flt ? "fmoved "
                             : (rtl::dataTypeSize(inst.memType) == 1
                                    ? "moveb "
                                    : "movl "))
                     << regName(names, inst.src) << "," << mode;
                break;
              }
              case InstKind::Jump:
                line << "jra " << inst.target;
                break;
              case InstKind::CondJump:
                line << jccFor(lastCmp, inst.when) << " " << inst.target;
                break;
              case InstKind::Call:
                line << "jbsr _" << inst.target;
                break;
              case InstKind::Return:
                line << "rts";
                break;
              default:
                line << "| stream instruction (not a 68020 concept)";
                break;
            }
            os << strFormat("    %-32s", line.str().c_str());
            if (!inst.comment.empty())
                os << " | " << inst.comment;
            os << "\n";
        }
    }
    return os.str();
}

std::string
printProgram(const rtl::Program &prog)
{
    std::ostringstream os;
    for (const auto &f : prog.functions())
        os << printFunction(*f) << "\n";
    return os.str();
}

} // namespace wmstream::m68k
