#include "timing/scalar_sim.h"

#include <cstring>
#include <unordered_map>

#include "support/diag.h"
#include "support/str.h"

namespace wmstream::timing {

using rtl::DataType;
using rtl::Expr;
using rtl::ExprPtr;
using rtl::Inst;
using rtl::InstKind;
using rtl::Op;
using rtl::RegFile;

CostModel
sun3_280Model()
{
    // Sun 3/280: 25 MHz MC68020 with an MC68881 coprocessor. Floating
    // loads and stores cross the coprocessor interface and are the
    // dominant cost; 68881 arithmetic is slow but register-to-register
    // operations overlap some of the interface overhead.
    CostModel m;
    m.name = "Sun 3/280 (68020+68881)";
    m.cyclesIntAlu = 3;
    m.cyclesIntMul = 28;
    m.cyclesIntDiv = 90;
    m.cyclesFltAdd = 20;
    m.cyclesFltMul = 24;
    m.cyclesFltDiv = 55;
    m.cyclesLoad = 50;
    m.cyclesStore = 55;
    m.cyclesCompare = 3;
    m.cyclesBranch = 6;
    m.cyclesMaterialize = 4;
    m.cyclesCall = 18;
    m.cyclesMove = 3;
    m.cyclesCvt = 35;
    return m;
}

CostModel
hp9000_345Model()
{
    // HP 9000/345: 50 MHz MC68030 with an MC68882. The 68882 pipelines
    // coprocessor transfers, so memory references cost relatively less
    // than on the Sun 3.
    CostModel m;
    m.name = "HP 9000/345 (68030+68882)";
    m.cyclesIntAlu = 2;
    m.cyclesIntMul = 24;
    m.cyclesIntDiv = 80;
    m.cyclesFltAdd = 24;
    m.cyclesFltMul = 28;
    m.cyclesFltDiv = 55;
    m.cyclesLoad = 17;
    m.cyclesStore = 20;
    m.cyclesCompare = 2;
    m.cyclesBranch = 5;
    m.cyclesMaterialize = 3;
    m.cyclesCall = 14;
    m.cyclesMove = 2;
    m.cyclesCvt = 28;
    return m;
}

CostModel
vax8600Model()
{
    // VAX 8600: microcoded CISC with memory operands folded into
    // instructions; a separate memory reference is comparatively
    // cheap, while D-float arithmetic dominates the loop.
    CostModel m;
    m.name = "VAX 8600";
    m.cyclesIntAlu = 2;
    m.cyclesIntMul = 12;
    m.cyclesIntDiv = 40;
    m.cyclesFltAdd = 16;
    m.cyclesFltMul = 20;
    m.cyclesFltDiv = 38;
    m.cyclesLoad = 4;
    m.cyclesStore = 5;
    m.cyclesCompare = 2;
    m.cyclesBranch = 3;
    m.cyclesMaterialize = 2;
    m.cyclesCall = 12;
    m.cyclesMove = 2;
    m.cyclesCvt = 10;
    return m;
}

CostModel
m88100Model()
{
    // Motorola 88100: pipelined RISC with a hardware FPU; most
    // operations are short, so removing a load removes a small slice
    // of a small loop.
    CostModel m;
    m.name = "Motorola 88100";
    m.cyclesIntAlu = 1;
    m.cyclesIntMul = 4;
    m.cyclesIntDiv = 18;
    m.cyclesFltAdd = 5;
    m.cyclesFltMul = 6;
    m.cyclesFltDiv = 30;
    m.cyclesLoad = 2;
    m.cyclesStore = 2;
    m.cyclesCompare = 1;
    m.cyclesBranch = 2;
    m.cyclesMaterialize = 2;
    m.cyclesCall = 8;
    m.cyclesMove = 1;
    m.cyclesCvt = 6;
    return m;
}

const char *
costClassName(CostClass c)
{
    switch (c) {
      case CostClass::IntAlu: return "int_alu";
      case CostClass::IntMul: return "int_mul";
      case CostClass::IntDiv: return "int_div";
      case CostClass::FltAdd: return "flt_add";
      case CostClass::FltMul: return "flt_mul";
      case CostClass::FltDiv: return "flt_div";
      case CostClass::Load: return "load";
      case CostClass::Store: return "store";
      case CostClass::Compare: return "compare";
      case CostClass::Branch: return "branch";
      case CostClass::Materialize: return "materialize";
      case CostClass::Call: return "call";
      case CostClass::Move: return "move";
      case CostClass::Cvt: return "cvt";
      case CostClass::kCount: break;
    }
    return "?";
}

void
ScalarRunResult::exportCounters(obs::CounterRegistry &reg) const
{
    reg.set("insts_executed", instsExecuted);
    reg.set("memory_refs", memoryRefs);
    reg.set("millicycles.total",
            static_cast<uint64_t>(cycles * 1000.0 + 0.5));
    for (size_t c = 0; c < static_cast<size_t>(CostClass::kCount); ++c) {
        if (!instsByClass[c])
            continue;
        const char *n = costClassName(static_cast<CostClass>(c));
        reg.set(std::string("insts.") + n, instsByClass[c]);
        reg.set(std::string("millicycles.") + n,
                static_cast<uint64_t>(cyclesByClass[c] * 1000.0 + 0.5));
    }
}

namespace {

struct Val
{
    bool isFloat = false;
    int64_t i = 0;
    double f = 0.0;
};

struct RunError : std::runtime_error
{
    using std::runtime_error::runtime_error;
};

class ScalarMachine
{
  public:
    ScalarMachine(const rtl::Program &prog, const CostModel &model,
                  uint64_t maxInsts, size_t memBytes)
        : prog_(prog), model_(model), maxInsts_(maxInsts)
    {
        mem_.assign(memBytes, 0);
        int fi = 0;
        for (const auto &fp : prog.functions()) {
            funcEntry_[fp->name()] = static_cast<int64_t>(code_.size());
            labels_.emplace_back();
            for (const auto &bp : fp->blocks()) {
                labels_[fi][bp->label()] =
                    static_cast<int64_t>(code_.size());
                for (const Inst &inst : bp->insts)
                    code_.push_back({&inst, fi});
            }
            ++fi;
        }
        for (const auto &g : prog.globals()) {
            WS_ASSERT(g.address >= 0, "program not laid out");
            if (g.address + g.size > static_cast<int64_t>(mem_.size())) {
                loadError_ = strFormat(
                    "global %s (%lld bytes at %lld) exceeds simulated "
                    "memory (%zu bytes)",
                    g.name.c_str(), static_cast<long long>(g.size),
                    static_cast<long long>(g.address), mem_.size());
                return;
            }
            if (!g.init.empty())
                std::memcpy(&mem_[g.address], g.init.data(),
                            g.init.size());
        }
        rreg_[30] = static_cast<int64_t>(mem_.size()) - 64;
    }

    ScalarRunResult
    run()
    {
        ScalarRunResult res;
        if (!loadError_.empty()) {
            res.error = loadError_;
            return res;
        }
        auto it = funcEntry_.find("main");
        if (it == funcEntry_.end()) {
            res.error = "no main function";
            return res;
        }
        int64_t pc = it->second;
        try {
            for (;;) {
                if (res.instsExecuted++ > maxInsts_)
                    throw RunError("instruction budget exceeded");
                if (pc < 0 || pc >= static_cast<int64_t>(code_.size()))
                    throw RunError("PC out of range");
                const Inst &inst = *code_[pc].inst;
                int func = code_[pc].func;
                switch (inst.kind) {
                  case InstKind::Assign: {
                    Val v = eval(inst.src);
                    if (inst.dst->regFile() == RegFile::CC) {
                        cc_[inst.dst->regIndex() == 1 ? 1 : 0] =
                            v.isFloat ? v.f != 0.0 : v.i != 0;
                        charge(res, CostClass::Compare);
                    } else {
                        writeReg(inst.dst, v);
                        charge(res, assignClass(inst));
                    }
                    ++pc;
                    break;
                  }
                  case InstKind::Load: {
                    Val a = eval(inst.addr);
                    writeReg(inst.dst, memRead(a.i, inst.memType));
                    charge(res, CostClass::Load);
                    ++res.memoryRefs;
                    ++pc;
                    break;
                  }
                  case InstKind::Store: {
                    Val a = eval(inst.addr);
                    Val v = eval(inst.src);
                    memWrite(a.i, inst.memType, v);
                    charge(res, CostClass::Store);
                    ++res.memoryRefs;
                    ++pc;
                    break;
                  }
                  case InstKind::Jump:
                    pc = label(func, inst.target);
                    charge(res, CostClass::Branch);
                    break;
                  case InstKind::CondJump: {
                    bool c = cc_[inst.side == rtl::UnitSide::Flt ? 1 : 0];
                    pc = (c == inst.when) ? label(func, inst.target)
                                          : pc + 1;
                    charge(res, CostClass::Branch);
                    break;
                  }
                  case InstKind::Call: {
                    auto fit = funcEntry_.find(inst.target);
                    if (fit == funcEntry_.end())
                        throw RunError("unknown function " + inst.target);
                    ra_.push_back(pc + 1);
                    pc = fit->second;
                    charge(res, CostClass::Call);
                    break;
                  }
                  case InstKind::Return:
                    charge(res, CostClass::Call);
                    if (ra_.empty()) {
                        res.ok = true;
                        res.returnValue = rreg_[2];
                        return res;
                    }
                    pc = ra_.back();
                    ra_.pop_back();
                    break;
                  default:
                    throw RunError("stream instruction on scalar target");
                }
            }
        } catch (const RunError &e) {
            res.error = e.what();
            res.ok = false;
            return res;
        }
    }

  private:
    double
    rate(CostClass c) const
    {
        switch (c) {
          case CostClass::IntAlu: return model_.cyclesIntAlu;
          case CostClass::IntMul: return model_.cyclesIntMul;
          case CostClass::IntDiv: return model_.cyclesIntDiv;
          case CostClass::FltAdd: return model_.cyclesFltAdd;
          case CostClass::FltMul: return model_.cyclesFltMul;
          case CostClass::FltDiv: return model_.cyclesFltDiv;
          case CostClass::Load: return model_.cyclesLoad;
          case CostClass::Store: return model_.cyclesStore;
          case CostClass::Compare: return model_.cyclesCompare;
          case CostClass::Branch: return model_.cyclesBranch;
          case CostClass::Materialize: return model_.cyclesMaterialize;
          case CostClass::Call: return model_.cyclesCall;
          case CostClass::Move: return model_.cyclesMove;
          case CostClass::Cvt: return model_.cyclesCvt;
          case CostClass::kCount: break;
        }
        return 0;
    }

    void
    charge(ScalarRunResult &res, CostClass c) const
    {
        double r = rate(c);
        res.cycles += r;
        res.cyclesByClass[static_cast<size_t>(c)] += r;
        ++res.instsByClass[static_cast<size_t>(c)];
    }

    CostClass
    assignClass(const Inst &inst) const
    {
        const ExprPtr &s = inst.src;
        bool flt = inst.dst->regFile() == RegFile::Flt ||
                   inst.dst->regFile() == RegFile::VFlt;
        switch (s->kind()) {
          case Expr::Kind::Reg:
            return CostClass::Move;
          case Expr::Kind::Const:
          case Expr::Kind::Sym:
            return CostClass::Materialize;
          case Expr::Kind::Un:
            if (s->op() == Op::CvtIF || s->op() == Op::CvtFI)
                return CostClass::Cvt;
            return flt ? CostClass::FltAdd : CostClass::IntAlu;
          case Expr::Kind::Bin:
            switch (s->op()) {
              case Op::Mul:
                return flt ? CostClass::FltMul : CostClass::IntMul;
              case Op::Div:
              case Op::Rem:
                return flt ? CostClass::FltDiv : CostClass::IntDiv;
              default:
                return flt ? CostClass::FltAdd : CostClass::IntAlu;
            }
          default:
            return CostClass::IntAlu;
        }
    }

    int64_t
    label(int func, const std::string &l)
    {
        auto it = labels_[func].find(l);
        if (it == labels_[func].end())
            throw RunError("unknown label " + l);
        return it->second;
    }

    void
    checkAddr(int64_t addr, int size)
    {
        if (addr < 0 || addr + size > static_cast<int64_t>(mem_.size()))
            throw RunError(strFormat("memory access out of bounds: %lld",
                                     static_cast<long long>(addr)));
    }

    Val
    memRead(int64_t addr, DataType t)
    {
        int size = rtl::dataTypeSize(t);
        checkAddr(addr, size);
        Val v;
        if (rtl::isFloatType(t)) {
            v.isFloat = true;
            std::memcpy(&v.f, &mem_[addr], 8);
        } else if (size == 8) {
            std::memcpy(&v.i, &mem_[addr], 8);
        } else if (size == 1) {
            v.i = mem_[addr];
        }
        return v;
    }

    void
    memWrite(int64_t addr, DataType t, const Val &v)
    {
        int size = rtl::dataTypeSize(t);
        checkAddr(addr, size);
        if (rtl::isFloatType(t)) {
            double d = v.isFloat ? v.f : static_cast<double>(v.i);
            std::memcpy(&mem_[addr], &d, 8);
        } else {
            int64_t x = v.isFloat ? static_cast<int64_t>(v.f) : v.i;
            std::memcpy(&mem_[addr], &x, size);
        }
    }

    void
    writeReg(const ExprPtr &dst, const Val &v)
    {
        int idx = dst->regIndex();
        if (idx == 31)
            return;
        if (dst->regFile() == RegFile::Flt)
            freg_[idx] = v.isFloat ? v.f : static_cast<double>(v.i);
        else
            rreg_[idx] = v.isFloat ? static_cast<int64_t>(v.f) : v.i;
    }

    Val
    eval(const ExprPtr &e)
    {
        switch (e->kind()) {
          case Expr::Kind::Const: {
            Val v;
            if (rtl::isFloatType(e->type())) {
                v.isFloat = true;
                v.f = e->fval();
            } else {
                v.i = e->ival();
            }
            return v;
          }
          case Expr::Kind::Sym: {
            Val v;
            v.i = prog_.globalAddress(e->symbol()) + e->symOffset();
            return v;
          }
          case Expr::Kind::Reg: {
            Val v;
            int idx = e->regIndex();
            if (e->regFile() == RegFile::Flt) {
                v.isFloat = true;
                v.f = idx == 31 ? 0.0 : freg_[idx];
            } else {
                v.i = idx == 31 ? 0 : rreg_[idx];
            }
            return v;
          }
          case Expr::Kind::Mem: {
            Val a = eval(e->addr());
            return memRead(a.i, e->type());
          }
          case Expr::Kind::Un: {
            Val x = eval(e->lhs());
            Val v;
            switch (e->op()) {
              case Op::Neg:
                if (x.isFloat) {
                    v.isFloat = true;
                    v.f = -x.f;
                } else {
                    v.i = -x.i;
                }
                return v;
              case Op::Not: v.i = ~x.i; return v;
              case Op::CvtIF:
                v.isFloat = true;
                v.f = static_cast<double>(x.i);
                return v;
              case Op::CvtFI:
                v.i = static_cast<int64_t>(x.f);
                return v;
              default:
                throw RunError("bad unary op");
            }
          }
          case Expr::Kind::Bin: {
            Val l = eval(e->lhs());
            Val r = eval(e->rhs());
            Val v;
            if (l.isFloat || r.isFloat) {
                double a = l.isFloat ? l.f : static_cast<double>(l.i);
                double b = r.isFloat ? r.f : static_cast<double>(r.i);
                switch (e->op()) {
                  case Op::Add: v.isFloat = true; v.f = a + b; return v;
                  case Op::Sub: v.isFloat = true; v.f = a - b; return v;
                  case Op::Mul: v.isFloat = true; v.f = a * b; return v;
                  case Op::Div:
                    if (b == 0.0)
                        throw RunError("floating divide by zero");
                    v.isFloat = true;
                    v.f = a / b;
                    return v;
                  case Op::Eq: v.i = a == b; return v;
                  case Op::Ne: v.i = a != b; return v;
                  case Op::Lt: v.i = a < b; return v;
                  case Op::Le: v.i = a <= b; return v;
                  case Op::Gt: v.i = a > b; return v;
                  case Op::Ge: v.i = a >= b; return v;
                  default:
                    throw RunError("bad float op");
                }
            }
            int64_t a = l.i, b = r.i;
            auto u = [](int64_t x) { return static_cast<uint64_t>(x); };
            switch (e->op()) {
              case Op::Add: v.i = static_cast<int64_t>(u(a) + u(b));
                return v;
              case Op::Sub: v.i = static_cast<int64_t>(u(a) - u(b));
                return v;
              case Op::Mul: v.i = static_cast<int64_t>(u(a) * u(b));
                return v;
              case Op::Div:
                if (!b)
                    throw RunError("integer divide by zero");
                v.i = a / b;
                return v;
              case Op::Rem:
                if (!b)
                    throw RunError("integer remainder by zero");
                v.i = a % b;
                return v;
              case Op::And: v.i = a & b; return v;
              case Op::Or: v.i = a | b; return v;
              case Op::Xor: v.i = a ^ b; return v;
              case Op::Shl: v.i = a << (b & 63); return v;
              case Op::Shr:
                v.i = static_cast<int64_t>(u(a) >> (b & 63));
                return v;
              case Op::Sar: v.i = a >> (b & 63); return v;
              case Op::Eq: v.i = a == b; return v;
              case Op::Ne: v.i = a != b; return v;
              case Op::Lt: v.i = a < b; return v;
              case Op::Le: v.i = a <= b; return v;
              case Op::Gt: v.i = a > b; return v;
              case Op::Ge: v.i = a >= b; return v;
              default:
                throw RunError("bad int op");
            }
          }
        }
        throw RunError("bad expression");
    }

    struct FlatInst
    {
        const Inst *inst;
        int func;
    };

    const rtl::Program &prog_;
    const CostModel &model_;
    uint64_t maxInsts_;
    std::vector<uint8_t> mem_;
    std::string loadError_; ///< image didn't fit; reported by run()
    std::vector<FlatInst> code_;
    std::unordered_map<std::string, int64_t> funcEntry_;
    std::vector<std::unordered_map<std::string, int64_t>> labels_;
    int64_t rreg_[32] = {};
    double freg_[32] = {};
    bool cc_[2] = {false, false};
    std::vector<int64_t> ra_;
};

} // anonymous namespace

ScalarRunResult
runScalar(const rtl::Program &prog, const CostModel &model,
          uint64_t maxInsts, size_t memBytes)
{
    ScalarMachine m(prog, model, maxInsts, memBytes);
    return m.run();
}

} // namespace wmstream::timing
