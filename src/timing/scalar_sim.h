/**
 * @file
 * Executing timing model for the scalar (load/store) target.
 *
 * Table I of the paper measures the recurrence optimization on real
 * machines (Sun 3/280, HP 9000/345, VAX 8600, Motorola 88100). We have
 * no 1990 hardware, so the substitution (see DESIGN.md) is an
 * executing simulator over the scalar RTL: it interprets the compiled
 * program sequentially — these are all single-issue machines — and
 * charges per-instruction costs from a per-machine CostModel. The
 * *ratio* between memory-reference cost and ALU cost is what the
 * experiment depends on; the models encode published instruction
 * timings coarsely.
 */

#ifndef WMSTREAM_TIMING_SCALAR_SIM_H
#define WMSTREAM_TIMING_SCALAR_SIM_H

#include <cstdint>
#include <string>
#include <vector>

#include "obs/counters.h"
#include "rtl/program.h"

namespace wmstream::timing {

/** Per-machine instruction costs, in cycles. */
struct CostModel
{
    std::string name;
    double cyclesIntAlu = 1;     ///< integer add/sub/logic/shift
    double cyclesIntMul = 4;
    double cyclesIntDiv = 20;
    double cyclesFltAdd = 2;     ///< also fp subtract
    double cyclesFltMul = 3;
    double cyclesFltDiv = 20;
    double cyclesLoad = 2;       ///< memory read incl. address mode
    double cyclesStore = 2;
    double cyclesCompare = 1;
    double cyclesBranch = 2;
    double cyclesMaterialize = 2; ///< address/constant materialization
    double cyclesCall = 5;
    double cyclesMove = 1;        ///< register-to-register copy
    double cyclesCvt = 4;
};

/** The four Table-I machines (see the .cc for the timing rationale). */
CostModel sun3_280Model();
CostModel hp9000_345Model();
CostModel vax8600Model();
CostModel m88100Model();

/**
 * Where a scalar machine's weighted cycles go: one class per
 * CostModel rate. Mirrors the wmsim stall-cause attribution so
 * WM-vs-68020 comparisons break down by cause on both sides.
 */
enum class CostClass : uint8_t {
    IntAlu, IntMul, IntDiv, FltAdd, FltMul, FltDiv, Load, Store,
    Compare, Branch, Materialize, Call, Move, Cvt,
    kCount
};

/** Stable lower_snake_case name of @p c. */
const char *costClassName(CostClass c);

/** Result of a timed scalar run. */
struct ScalarRunResult
{
    bool ok = false;
    int64_t returnValue = 0;
    std::string error;
    double cycles = 0;          ///< weighted cycle count
    uint64_t instsExecuted = 0;
    uint64_t memoryRefs = 0;    ///< loads + stores executed

    /** @name Per-class attribution (sums match the totals above) */
    /// @{
    double cyclesByClass[static_cast<size_t>(CostClass::kCount)] = {};
    uint64_t instsByClass[static_cast<size_t>(CostClass::kCount)] = {};
    /// @}

    double cyclesOf(CostClass c) const
    {
        return cyclesByClass[static_cast<size_t>(c)];
    }
    uint64_t instsOf(CostClass c) const
    {
        return instsByClass[static_cast<size_t>(c)];
    }

    /**
     * Export counters into @p reg under dotted names:
     * "cycles.load", "insts.branch", ... Weighted cycles are scaled
     * by 1000 (registry values are integers) under "millicycles.*".
     */
    void exportCounters(obs::CounterRegistry &reg) const;
};

/**
 * Execute a register-assigned scalar-target program under @p model.
 * The program must be laid out. Cost accrues per executed instruction.
 */
ScalarRunResult runScalar(const rtl::Program &prog, const CostModel &model,
                          uint64_t maxInsts = 2'000'000'000,
                          size_t memBytes = 16u << 20);

} // namespace wmstream::timing

#endif // WMSTREAM_TIMING_SCALAR_SIM_H
